package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Profiler is a sampling profiler of the simulated guest: every
// SamplePeriod virtual cycles of a core's committed time it records the
// retiring guest PC, resolves it against the machine's symbol table, and
// maintains per-function flat counts plus cumulative (self + callees)
// counts derived from a shadow call stack fed by retired call/return
// records. All sampling is driven by the deterministic virtual clock, so
// same-seed runs produce identical profiles.
//
// A nil *Profiler is a valid "profiling disabled" value for every method.
type Profiler struct {
	period uint64
	syms   *SymTable

	next  []uint64  // per-core next sample cycle
	stack [][]int32 // per-core shadow call stack of span indices

	flat map[int32]uint64
	cum  map[int32]uint64

	samples uint64
	unknown uint64 // samples whose PC resolved to no function
}

// maxShadowDepth bounds the shadow call stack; deeper frames are dropped
// (recursion past this depth still profiles flat counts correctly).
const maxShadowDepth = 128

// NewProfiler builds a profiler over syms for the given core count.
// period 0 selects DefaultSamplePeriod.
func NewProfiler(syms *SymTable, cores int, period uint64) *Profiler {
	if period == 0 {
		period = DefaultSamplePeriod
	}
	p := &Profiler{
		period: period,
		syms:   syms,
		next:   make([]uint64, cores),
		stack:  make([][]int32, cores),
		flat:   map[int32]uint64{},
		cum:    map[int32]uint64{},
	}
	for i := range p.next {
		p.next[i] = period
	}
	return p
}

// OnCall pushes the callee (resolved from the call target) onto the
// core's shadow stack.
func (p *Profiler) OnCall(core int, target uint64) {
	if p == nil {
		return
	}
	idx, _ := p.syms.Resolve(target)
	if len(p.stack[core]) < maxShadowDepth {
		p.stack[core] = append(p.stack[core], int32(idx))
	}
}

// OnRet pops the core's shadow stack.
func (p *Profiler) OnRet(core int) {
	if p == nil {
		return
	}
	if n := len(p.stack[core]); n > 0 {
		p.stack[core] = p.stack[core][:n-1]
	}
}

// SkipIdle advances the core's sampling cursor past an idle span ending
// at cycle without taking samples, so blocked-core time does not drown
// the profile in unresolved samples.
func (p *Profiler) SkipIdle(core int, cycle uint64) {
	if p == nil || cycle < p.next[core] {
		return
	}
	n := (cycle-p.next[core])/p.period + 1
	p.next[core] += n * p.period
}

// Observe accounts one retired instruction committing at cycle on core.
// It takes samples for every period boundary the commit time crossed.
func (p *Profiler) Observe(core int, cycle, pc uint64) {
	if p == nil || cycle < p.next[core] {
		return
	}
	idx, _ := p.syms.Resolve(pc)
	for p.next[core] <= cycle {
		p.next[core] += p.period
		p.sample(core, int32(idx))
	}
}

func (p *Profiler) sample(core int, idx int32) {
	p.samples++
	if idx < 0 {
		p.unknown++
		return
	}
	p.flat[idx]++
	// Cumulative: the sampled function plus every distinct caller on the
	// shadow stack, each counted once per sample even under recursion.
	p.cum[idx]++
	st := p.stack[core]
	for i := len(st) - 1; i >= 0; i-- {
		f := st[i]
		if f < 0 || f == idx {
			continue
		}
		dup := false
		for j := len(st) - 1; j > i; j-- {
			if st[j] == f {
				dup = true
				break
			}
		}
		if !dup {
			p.cum[f]++
		}
	}
}

// Reset clears all samples and shadow stacks (the period phase restarts,
// so a restored machine re-profiles identically).
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for i := range p.next {
		p.next[i] = p.period
		p.stack[i] = p.stack[i][:0]
	}
	p.flat = map[int32]uint64{}
	p.cum = map[int32]uint64{}
	p.samples = 0
	p.unknown = 0
}

// ProfileEntry is one function's row of a profile report.
type ProfileEntry struct {
	Name string
	Flat uint64
	Cum  uint64
}

// Profile is the rendered result of a profiling run, ordered by flat
// samples (descending), ties broken by name.
type Profile struct {
	Period  uint64
	Samples uint64
	Unknown uint64
	Entries []ProfileEntry
}

// Report renders the current counts into an ordered Profile.
func (p *Profiler) Report() *Profile {
	if p == nil {
		return nil
	}
	out := &Profile{Period: p.period, Samples: p.samples, Unknown: p.unknown}
	for idx, n := range p.flat {
		out.Entries = append(out.Entries, ProfileEntry{
			Name: p.syms.Name(int(idx)),
			Flat: n,
			Cum:  p.cum[idx],
		})
	}
	// Functions seen only on stacks (no flat samples) still get rows.
	for idx, n := range p.cum {
		if _, ok := p.flat[idx]; !ok {
			out.Entries = append(out.Entries, ProfileEntry{Name: p.syms.Name(int(idx)), Cum: n})
		}
	}
	sort.Slice(out.Entries, func(i, j int) bool {
		if out.Entries[i].Flat != out.Entries[j].Flat {
			return out.Entries[i].Flat > out.Entries[j].Flat
		}
		if out.Entries[i].Cum != out.Entries[j].Cum {
			return out.Entries[i].Cum > out.Entries[j].Cum
		}
		return out.Entries[i].Name < out.Entries[j].Name
	})
	return out
}

// Top returns the hottest function by flat samples ("" when empty).
func (p *Profile) Top() string {
	if p == nil || len(p.Entries) == 0 {
		return ""
	}
	return p.Entries[0].Name
}

// Table renders the profile as an aligned text table (flat%, cum%,
// samples, function), pprof-style.
func (p *Profile) Table() string {
	if p == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile: %d samples, 1 sample per %d virtual cycles (%d unresolved)\n",
		p.Samples, p.Period, p.Unknown)
	fmt.Fprintf(&sb, "%10s %7s %10s %7s  %s\n", "flat", "flat%", "cum", "cum%", "function")
	total := p.Samples
	pct := func(n uint64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	for _, e := range p.Entries {
		fmt.Fprintf(&sb, "%10d %6.2f%% %10d %6.2f%%  %s\n", e.Flat, pct(e.Flat), e.Cum, pct(e.Cum), e.Name)
	}
	return sb.String()
}
