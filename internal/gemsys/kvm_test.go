package gemsys

import (
	"errors"
	"testing"

	"svbench/internal/cpu"
	"svbench/internal/ir"
	"svbench/internal/isa"
	"svbench/internal/kernel"
)

func ckptModule() *ir.Module {
	m := ir.NewModule("ckpt")
	b := ir.NewFunc("main", 0)
	b.EcallV(kernel.M5Checkpoint)
	b.EcallV(kernel.M5Exit)
	m.AddFunc(b.Build())
	return m
}

// TestKVMSetupFallback reproduces the §3.4.1 methodology story: setup
// under the unstable KVM core freezes at the checkpoint magic instruction
// most of the time, and the harness falls back to the atomic core.
func TestKVMSetupFallback(t *testing.T) {
	kvm := &cpu.KVM{Unstable: true}
	failures := 0
	for attempt := 0; attempt < 3; attempt++ {
		m, err := New(DefaultConfig(isa.RV64))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Spawn("p", ckptModule(), "main", 0, nil); err != nil {
			t.Fatal(err)
		}
		err = m.RunSetupKVM(kvm, 10_000_000)
		if errors.Is(err, ErrKVMUnstable) {
			failures++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !m.CheckpointPending() {
			t.Fatal("successful KVM setup must leave a checkpoint pending")
		}
	}
	if failures != 2 {
		t.Fatalf("unstable KVM failed %d/3 setups, want 2 (deterministic model)", failures)
	}

	// The stable fallback path (the atomic core) always succeeds.
	m, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn("p", ckptModule(), "main", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.RunSetup(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.CheckpointPending() {
		t.Fatal("atomic setup must reach the checkpoint")
	}
	if kvm.Insts == 0 {
		t.Fatal("KVM fast-forward did not account instructions")
	}
}
