package harness

import (
	"testing"

	"svbench/internal/gemsys"
	"svbench/internal/isa"
)

func TestShopSpecsFunctional(t *testing.T) {
	for _, spec := range ShopSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(isa.RV64, spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cold.Cycles <= res.Warm.Cycles {
				t.Errorf("cold %d <= warm %d", res.Cold.Cycles, res.Warm.Cycles)
			}
			t.Logf("cold=%d warm=%d insts=%d", res.Cold.Cycles, res.Warm.Cycles, res.Cold.Insts)
		})
	}
}

func TestHotelSpecsFunctional(t *testing.T) {
	for _, spec := range HotelSpecs(EngineCassandra) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(isa.RV64, spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cold.Cycles <= res.Warm.Cycles {
				t.Errorf("cold %d <= warm %d", res.Cold.Cycles, res.Warm.Cycles)
			}
			t.Logf("cold=%d warm=%d l1i=%d l1d=%d l2=%d", res.Cold.Cycles, res.Warm.Cycles,
				res.Cold.L1IMisses, res.Cold.L1DMisses, res.Cold.L2Misses)
		})
	}
}

func TestHotelOnMongoAndMariaDB(t *testing.T) {
	for _, eng := range []HotelEngine{EngineMongo, EngineMariaDB} {
		res, err := Run(isa.RV64, HotelSpec("rate", eng))
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		t.Logf("%s: cold=%d warm=%d", eng, res.Cold.Cycles, res.Warm.Cycles)
	}
}

// TestServiceBindingsExposed pins the fault-layer contract: a booted
// machine reports every guest→service channel binding, named after the
// engine behind it, and the returned slice is a defensive copy.
func TestServiceBindingsExposed(t *testing.T) {
	b, err := BootSpec(gemsys.DefaultConfig(isa.RV64), HotelSpec("geo", EngineCassandra))
	if err != nil {
		t.Fatal(err)
	}
	bs := b.ServiceBindings()
	if len(bs) != 2 {
		t.Fatalf("geo bindings = %+v, want db + memcached", bs)
	}
	if bs[0].Name != "cassandra" || bs[1].Name != "memcached" {
		t.Fatalf("binding names = %q, %q", bs[0].Name, bs[1].Name)
	}
	seen := map[int]bool{}
	for _, bd := range bs {
		if bd.ReqCh == bd.RespCh || seen[bd.ReqCh] || seen[bd.RespCh] {
			t.Fatalf("channel ids not distinct: %+v", bs)
		}
		seen[bd.ReqCh], seen[bd.RespCh] = true, true
	}
	bs[0].Name = "clobbered"
	if b.ServiceBindings()[0].Name != "cassandra" {
		t.Fatal("ServiceBindings returned the internal slice, not a copy")
	}

	var fib Spec
	for _, sp := range StandaloneSpecs() {
		if sp.Name == "fibonacci-go" {
			fib = sp
		}
	}
	fb, err := BootSpec(gemsys.DefaultConfig(isa.RV64), fib)
	if err != nil {
		t.Fatal(err)
	}
	if got := fb.ServiceBindings(); len(got) != 0 {
		t.Fatalf("fibonacci-go has bindings %+v, want none", got)
	}
}
