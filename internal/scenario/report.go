package scenario

import (
	"fmt"
	"strings"

	"svbench/internal/faults"
	"svbench/internal/loadgen"
	"svbench/internal/trace"
)

// Bucket is one phase-relative slice of a scenario run: invocations are
// bucketed by arrival time against the union extent of the fault windows
// (pre / during / post). A baseline scenario puts everything in pre.
type Bucket struct {
	Name        string
	Invocations int
	Latency     loadgen.Pcts // end-to-end latency percentiles
	ColdStarts  int          // invocations that paid >= 1 cold start
	Errors      int          // failed or check-failed invocations
	Retries     int          // re-sent attempts of this bucket's invocations
}

// ErrorRate is the bucket's failed fraction.
func (b Bucket) ErrorRate() float64 {
	if b.Invocations == 0 {
		return 0
	}
	return float64(b.Errors) / float64(b.Invocations)
}

// meetsSLO judges the bucket against the scenario's objective. Empty
// buckets pass trivially.
func (b Bucket) meetsSLO(slo SLO) bool {
	if b.Invocations == 0 {
		return true
	}
	if slo.P99NS > 0 && b.Latency.P99 > slo.P99NS {
		return false
	}
	if b.ErrorRate() > slo.ErrorRate {
		return false
	}
	return true
}

// Result is one scenario run's complete outcome. Every field — including
// the rendered table, stats text and trace JSON — is a pure function of
// the run's Config.
type Result struct {
	Cfg  Config
	Load *loadgen.Report
	// Faults is the injector's ledger of what was actually injected.
	Faults faults.Report

	// Phase-bucketed metrics. For a baseline (windowless) scenario only
	// Pre is populated and Windowed is false.
	Pre, During, Post Bucket
	Windowed          bool
	WindowStart       uint64 // earliest phase window start
	WindowEnd         uint64 // latest phase window end

	// Recovery: over completions observed after WindowEnd, a violation is
	// a failed invocation or one over the SLO's p99 bound. RecoveredAt is
	// the last violating completion (WindowEnd when none violate);
	// RecoveryNS = RecoveredAt - WindowEnd. Recovered reports that the
	// run actually reattained the SLO: no violations remained, or at
	// least one clean completion followed the last violation.
	Recovered   bool
	RecoveryNS  uint64
	RecoveredAt uint64

	// SLOPass is the scenario verdict: the pre bucket meets the SLO, the
	// run recovered, and recovery beat the deadline (when one is set).
	SLOPass bool

	// StatsText is the load run's registry dump plus the scenario.*
	// block; TraceJSON the combined Perfetto trace (load events plus
	// fault-window spans and the recovery marker).
	StatsText string
	TraceJSON []byte
}

// bucketize splits the invocations by arrival time against the window
// span and summarizes each slice.
func bucketize(name string, invs []loadgen.Invocation, pick func(loadgen.Invocation) bool) Bucket {
	b := Bucket{Name: name}
	var lat []uint64
	for _, inv := range invs {
		if !pick(inv) {
			continue
		}
		b.Invocations++
		lat = append(lat, inv.Latency)
		if inv.Cold {
			b.ColdStarts++
		}
		if inv.Failed || inv.CheckFailed {
			b.Errors++
		}
		if inv.Attempts > 1 {
			b.Retries += inv.Attempts - 1
		}
	}
	b.Latency = loadgen.Percentiles(lat)
	return b
}

// assemble computes buckets, recovery and the verdict, renders the
// scenario.* stats block and splices the scenario events into the trace.
func assemble(cfg Config, plan faults.Plan, ledger faults.Report, lr *loadgen.Report) (*Result, error) {
	s := &cfg.Scenario
	r := &Result{Cfg: cfg, Load: lr, Faults: ledger}

	span, windowed := plan.WindowSpan()
	r.Windowed = windowed
	if windowed {
		r.WindowStart, r.WindowEnd = span.Start, span.End
	}

	invs := lr.Invocations
	if !windowed {
		r.Pre = bucketize("steady", invs, func(loadgen.Invocation) bool { return true })
		r.During = Bucket{Name: "during"}
		r.Post = Bucket{Name: "post"}
	} else {
		r.Pre = bucketize("pre", invs, func(iv loadgen.Invocation) bool { return iv.Arrive < span.Start })
		r.During = bucketize("during", invs, func(iv loadgen.Invocation) bool { return span.Contains(iv.Arrive) })
		r.Post = bucketize("post", invs, func(iv loadgen.Invocation) bool { return iv.Arrive >= span.End })
	}

	// Recovery over post-window completions.
	r.RecoveredAt = r.WindowEnd
	if windowed {
		var lastClean uint64
		anyClean := false
		for _, iv := range invs {
			if iv.Done < r.WindowEnd {
				continue
			}
			violating := iv.Failed || (s.SLO.P99NS > 0 && iv.Latency > s.SLO.P99NS)
			if violating && iv.Done > r.RecoveredAt {
				r.RecoveredAt = iv.Done
			}
			if !violating {
				anyClean = true
				if iv.Done > lastClean {
					lastClean = iv.Done
				}
			}
		}
		r.RecoveryNS = r.RecoveredAt - r.WindowEnd
		// Recovered: no violation remained, or clean traffic followed the
		// last violating completion.
		r.Recovered = r.RecoveredAt == r.WindowEnd || (anyClean && lastClean > r.RecoveredAt)
	} else {
		r.Recovered = true
	}

	r.SLOPass = r.Pre.meetsSLO(s.SLO) && r.Recovered &&
		(s.RecoveryDeadline == 0 || r.RecoveryNS <= s.RecoveryDeadline)
	if !windowed {
		// Baseline: the steady bucket is the whole story.
		r.SLOPass = r.Pre.meetsSLO(s.SLO)
	}

	r.StatsText = lr.StatsText + r.statsBlock()
	tj, err := r.traceJSON(lr)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: trace export: %w", s.Name, err)
	}
	r.TraceJSON = tj
	return r, nil
}

// statsBlock renders the scenario.* registry entries.
func (r *Result) statsBlock() string {
	reg := trace.NewRegistry()
	u := func(name, desc string, v uint64) {
		reg.Func("scenario."+name, desc, func() uint64 { return v })
	}
	b01 := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	u("phases", "timed fault phases of the scenario", uint64(len(r.Cfg.Scenario.Phases)))
	u("windowStartNS", "earliest fault window start (virtual ns)", r.WindowStart)
	u("windowEndNS", "latest fault window end (virtual ns)", r.WindowEnd)
	for _, b := range []Bucket{r.Pre, r.During, r.Post} {
		p := b.Name + "."
		u(p+"invocations", b.Name+"-bucket invocations", uint64(b.Invocations))
		u(p+"p50NS", b.Name+"-bucket p50 latency (virtual ns)", b.Latency.P50)
		u(p+"p95NS", b.Name+"-bucket p95 latency (virtual ns)", b.Latency.P95)
		u(p+"p99NS", b.Name+"-bucket p99 latency (virtual ns)", b.Latency.P99)
		u(p+"coldStarts", b.Name+"-bucket invocations paying a cold start", uint64(b.ColdStarts))
		u(p+"errors", b.Name+"-bucket failed or check-failed invocations", uint64(b.Errors))
		u(p+"retries", b.Name+"-bucket re-sent attempts", uint64(b.Retries))
	}
	u("faults.injected", "faults injected across all layers", r.Faults.Injected)
	u("faults.dropped", "messages dropped by the fault plan", r.Faults.Dropped)
	u("faults.corrupted", "replies corrupted by the fault plan", r.Faults.Corrupted)
	u("faults.delayed", "replies delayed by the fault plan", r.Faults.Delayed)
	u("faults.errorReplies", "injected error replies", r.Faults.ErrorReplies)
	u("faults.spikes", "injected latency spikes", r.Faults.Spikes)
	u("faults.outages", "attempts rejected inside outage windows", r.Faults.Outages)
	u("recovered", "run reattained the SLO after the last window (bool)", b01(r.Recovered))
	u("recoveryNS", "time from window close to SLO reattainment (virtual ns)", r.RecoveryNS)
	u("sloPass", "scenario SLO verdict (bool)", b01(r.SLOPass))
	return reg.Text("scenario " + r.Cfg.Scenario.Name)
}

// traceJSON splices the scenario's window spans and recovery marker into
// the load run's event stream and re-exports Chrome trace JSON.
func (r *Result) traceJSON(lr *loadgen.Report) ([]byte, error) {
	events := append([]trace.Event(nil), lr.Events...)
	for i, ph := range r.Cfg.Scenario.Phases {
		events = append(events, trace.Event{
			Kind:  trace.EvScenarioWindow,
			Cycle: ph.Window.Start,
			Arg:   uint64(i),
			Arg2:  ph.Window.Duration(),
		})
	}
	if r.Windowed && r.RecoveryNS > 0 && r.Recovered {
		events = append(events, trace.Event{
			Kind:  trace.EvScenarioRecover,
			Cycle: r.RecoveredAt,
			Arg2:  r.RecoveryNS,
		})
	}
	return trace.ChromeJSON(events, nil, lr.TraceDropped)
}

// Table renders the scenario's deterministic phase-bucketed report:
// configuration echo, per-phase windows, the pre/during/post matrix,
// fault ledger, recovery measurement and verdict. Same config, same
// bytes.
func (r *Result) Table() string {
	var sb strings.Builder
	s := &r.Cfg.Scenario
	verdict := func(pass bool) string {
		if pass {
			return "PASS"
		}
		return "FAIL"
	}
	fmt.Fprintf(&sb, "== scenario: %s (%s on %s, seed %d) ==\n",
		s.Name, r.Cfg.Spec.Name, r.Cfg.Cfg.Arch, r.Cfg.Seed)
	fmt.Fprintf(&sb, "%s\n", s.Description)
	fmt.Fprintf(&sb, "load         %s, %.1f rps over %.3f ms, keep-alive %.3f ms, pool cap %d\n",
		s.Arrival, s.RPS, float64(s.Duration)/1e6, float64(s.KeepAlive)/1e6, r.Load.Cfg.PoolCap())
	if s.Retry != nil {
		fmt.Fprintf(&sb, "retry        %d attempts, backoff %.3f ms, deadline %.3f ms\n",
			s.Retry.MaxAttempts, float64(s.Retry.Backoff)/1e6, float64(s.Retry.Deadline)/1e6)
	}
	for i, ph := range s.Phases {
		fmt.Fprintf(&sb, "phase %-6d %s: [%.3f, %.3f) ms, %d rule(s)\n",
			i, ph.Name, float64(ph.Window.Start)/1e6, float64(ph.Window.End)/1e6, len(ph.Rules))
	}
	fmt.Fprintf(&sb, "slo          p99 <= %.3f ms, error rate <= %.2f%%", float64(s.SLO.P99NS)/1e6, 100*s.SLO.ErrorRate)
	if s.RecoveryDeadline > 0 {
		fmt.Fprintf(&sb, ", recovery <= %.3f ms", float64(s.RecoveryDeadline)/1e6)
	}
	sb.WriteString("\n\n")

	fmt.Fprintf(&sb, "%-8s %6s %12s %12s %12s %6s %7s %8s %5s\n",
		"bucket", "invs", "p50 ns", "p95 ns", "p99 ns", "cold", "errors", "retries", "slo")
	row := func(b Bucket) {
		if b.Invocations == 0 && b.Name != "steady" {
			fmt.Fprintf(&sb, "%-8s %6d %12s %12s %12s %6s %7s %8s %5s\n",
				b.Name, 0, "-", "-", "-", "-", "-", "-", "-")
			return
		}
		fmt.Fprintf(&sb, "%-8s %6d %12d %12d %12d %6d %7d %8d %5s\n",
			b.Name, b.Invocations, b.Latency.P50, b.Latency.P95, b.Latency.P99,
			b.ColdStarts, b.Errors, b.Retries, verdict(b.meetsSLO(s.SLO)))
	}
	row(r.Pre)
	if r.Windowed {
		row(r.During)
		row(r.Post)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "faults       %d injected: %d dropped, %d corrupted, %d delayed, %d error replies, %d spikes, %d outage rejections\n",
		r.Faults.Injected, r.Faults.Dropped, r.Faults.Corrupted, r.Faults.Delayed,
		r.Faults.ErrorReplies, r.Faults.Spikes, r.Faults.Outages)
	fmt.Fprintf(&sb, "attempts     %d total, %d retries, %d recovered, %d failed\n",
		r.Load.Attempts, r.Load.Retries, r.Load.Recovered, r.Load.Failed)
	if r.Windowed {
		if r.Recovered {
			fmt.Fprintf(&sb, "recovery     SLO reattained %.3f ms after window close", float64(r.RecoveryNS)/1e6)
		} else {
			fmt.Fprintf(&sb, "recovery     NOT reattained (last violation %.3f ms after window close)", float64(r.RecoveryNS)/1e6)
		}
		if s.RecoveryDeadline > 0 {
			fmt.Fprintf(&sb, " (deadline %.3f ms)", float64(s.RecoveryDeadline)/1e6)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "verdict      %s\n", verdict(r.SLOPass))
	return sb.String()
}
