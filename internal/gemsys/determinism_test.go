package gemsys

import (
	"bytes"
	"testing"

	"svbench/internal/isa"
	"svbench/internal/trace"
)

// TestRestoreTwiceIsIdentical: restoring the same checkpoint twice and
// re-running evaluation must produce bit-identical statistics — the
// property gem5 checkpoints exist for, and the foundation of every
// A/B comparison in the evaluation.
func TestRestoreTwiceIsIdentical(t *testing.T) {
	mach, err := New(DefaultConfig(isa.RV64))
	if err != nil {
		t.Fatal(err)
	}
	req := mach.K.NewChannel()
	resp := mach.K.NewChannel()
	if _, err := mach.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Spawn("client", clientMod(6, 15), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if err := mach.RunSetup(50_000_000); err != nil {
		t.Fatal(err)
	}
	ck := mach.TakeCheckpoint()

	run := func() (uint64, uint64, string) {
		if err := mach.Restore(ck); err != nil {
			t.Fatal(err)
		}
		mach.K.Console.Reset()
		dumps, err := mach.RunEval(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return dumps[0].Server().Cycles, dumps[1].Server().Cycles, mach.Console()
	}
	c1, w1, out1 := run()
	c2, w2, out2 := run()
	if c1 != c2 || w1 != w2 {
		t.Fatalf("stats differ across restores: (%d,%d) vs (%d,%d)", c1, w1, c2, w2)
	}
	if out1 != out2 {
		t.Fatalf("functional output differs across restores")
	}
	// The checkpoint bytes must be unchanged by the runs (no aliasing of
	// live machine memory).
	ck2 := mach.TakeCheckpoint()
	_ = ck2
	if err := mach.Restore(ck); err != nil {
		t.Fatal(err)
	}
	c3, _, _ := run()
	if c3 != c1 {
		t.Fatal("checkpoint mutated by evaluation runs")
	}
}

// TestTraceExportsDeterministic: with the tracer and profiler on,
// restoring the same checkpoint twice must yield byte-identical Chrome
// trace JSON, stats text, and profile tables — observability must not
// perturb (or be perturbed by) the simulation.
func TestTraceExportsDeterministic(t *testing.T) {
	cfg := DefaultConfig(isa.RV64)
	cfg.Trace = trace.Options{Enabled: true}
	mach, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := mach.K.NewChannel()
	resp := mach.K.NewChannel()
	if _, err := mach.Spawn("server", serverMod(), "main", 1, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Spawn("client", clientMod(6, 15), "main", 0, []uint64{uint64(req), uint64(resp)}); err != nil {
		t.Fatal(err)
	}
	if err := mach.RunSetup(50_000_000); err != nil {
		t.Fatal(err)
	}
	ck := mach.TakeCheckpoint()

	run := func() ([]byte, string, string) {
		if err := mach.Restore(ck); err != nil {
			t.Fatal(err)
		}
		mach.K.Console.Reset()
		if _, err := mach.RunEval(100_000_000); err != nil {
			t.Fatal(err)
		}
		js, err := mach.TraceJSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, mach.StatsText("eval"), mach.Profile().Table()
	}
	js1, st1, pr1 := run()
	js2, st2, pr2 := run()
	if !bytes.Equal(js1, js2) {
		t.Fatal("same checkpoint, different trace JSON bytes")
	}
	if st1 != st2 {
		t.Fatal("same checkpoint, different stats text")
	}
	if pr1 != pr2 {
		t.Fatal("same checkpoint, different profile tables")
	}
	if len(js1) == 0 || st1 == "" || pr1 == "" {
		t.Fatalf("empty export: json=%d stats=%d profile=%d", len(js1), len(st1), len(pr1))
	}
}
