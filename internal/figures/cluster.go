package figures

import (
	"fmt"

	"svbench/internal/cluster"
	"svbench/internal/isa"
)

// The multi-machine cluster study (internal/cluster): each shipped
// DeathStarBench-style topology against every ISA, projected as a
// topology × arch end-to-end latency matrix. Fabric runs are internally
// sequential; the worker pool parallelizes across (topology, arch)
// points, and the projected Data is identical for every jobs value.

// ClusterRequests and ClusterRPS are the load the figure drives through
// each topology: enough requests for stable tail percentiles at a rate
// that keeps the service graphs busy without saturating them.
const (
	ClusterRequests = 20
	ClusterRPS      = 2000
)

// TableCluster runs every shipped topology on each arch and projects
// per-topology end-to-end latency percentiles, network traffic and
// executed instructions.
func TableCluster(arches []isa.Arch, seed uint64, jobs int, log func(string)) (Data, error) {
	var cfgs []cluster.Config
	for _, top := range cluster.Topologies() {
		for _, arch := range arches {
			cfgs = append(cfgs, cluster.Config{
				Topology: top,
				Arch:     arch,
				Requests: ClusterRequests,
				RPS:      ClusterRPS,
				Seed:     seed,
			})
		}
	}
	reports, err := cluster.RunMany(cfgs, jobs)
	if err != nil {
		return Data{}, err
	}
	d := Data{
		ID: "table-cluster",
		Title: fmt.Sprintf("Cluster topologies × arch: e2e latency, %d req @ %.0f rps (seed %d)",
			ClusterRequests, float64(ClusterRPS), seed),
		Columns: []string{"machines", "p50 us", "p95 us", "p99 us",
			"net msgs", "net KB", "insts M"},
	}
	for i, rep := range reports {
		label := fmt.Sprintf("%s/%s", cfgs[i].Topology.Name, cfgs[i].Arch)
		if log != nil {
			log(fmt.Sprintf("cluster %s: p50 %.1f us, p99 %.1f us, %d msgs",
				label, float64(rep.Latency.P50)/1e3, float64(rep.Latency.P99)/1e3, rep.NetMsgs))
		}
		d.Rows = append(d.Rows, Row{
			Label: label,
			Values: []float64{
				float64(rep.Machines),
				float64(rep.Latency.P50) / 1e3,
				float64(rep.Latency.P95) / 1e3,
				float64(rep.Latency.P99) / 1e3,
				float64(rep.NetMsgs),
				float64(rep.NetBytes) / 1e3,
				float64(rep.Instructions) / 1e6,
			},
		})
	}
	return d, nil
}
