package vswarm

import "svbench/internal/rpc"

// Default request parameters, sized per DESIGN.md's scaling note.
const (
	DefaultFibN       = 30
	DefaultAESPayload = 64
)

// FibRequest encodes a fibonacci request.
func FibRequest(n int) []byte {
	w := rpc.NewWriter()
	w.PutInt(uint64(n))
	return w.Bytes()
}

// AESKey returns the deterministic benchmark key.
func AESKey() []byte {
	k := make([]byte, 16)
	for i := range k {
		k[i] = byte(0x24*i + 7)
	}
	return k
}

// AESPayload returns a deterministic n-byte plaintext.
func AESPayload(n int) []byte {
	p := make([]byte, n)
	x := uint32(0xA5A5A5A5)
	for i := range p {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		p[i] = byte(x)
	}
	return p
}

// AESRequest encodes an aes request for an n-byte payload.
func AESRequest(n int) []byte {
	w := rpc.NewWriter()
	w.PutBytes(AESKey())
	w.PutBytes(AESPayload(n))
	return w.Bytes()
}

// AuthRequestMsg encodes an auth request for user i; valid selects whether
// the token matches.
func AuthRequestMsg(i int, valid bool) []byte {
	name, token := AuthRequest(i)
	if !valid {
		token = append([]byte(nil), token...)
		token[0] ^= 0xFF
	}
	w := rpc.NewWriter()
	w.PutBytes(name)
	w.PutBytes(token)
	return w.Bytes()
}
