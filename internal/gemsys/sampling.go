package gemsys

import (
	"fmt"
	"math"

	"svbench/internal/cpu"
	"svbench/internal/isa"
	"svbench/internal/stats"
)

// SamplingConfig selects SMARTS-style sampled detailed simulation for the
// evaluation phase. All units are retired trace records. Each interval of
// Interval records is split into three phases:
//
//	[0, Detail)                  detailed measurement through the O3 model
//	[Detail, Interval-Warmup)    functional fast-forward (no µarch updates)
//	[Interval-Warmup, Interval)  functional warming (caches/TLBs/bpred
//	                             trained at zero modeled latency)
//
// The detailed window leads each interval so the warming phase at the tail
// of interval k trains the structures the detailed window of interval k+1
// measures — and so the very first window measures the genuinely cold
// state right after a checkpoint restore, which is what the cold-start
// stats window is about. The zero value disables sampling entirely and is
// bit-identical to the full-detail path.
type SamplingConfig struct {
	Interval uint64 // U: sampling period
	Warmup   uint64 // W: functional-warming records before each detailed window
	Detail   uint64 // D: detailed-measured records per period
}

// DefaultSamplingConfig returns the tuned default used by samplebench and
// the figures sampling table.
func DefaultSamplingConfig() SamplingConfig {
	return SamplingConfig{Interval: 50_000, Warmup: 4_000, Detail: 2_000}
}

// Enabled reports whether sampling is active (the zero value is full
// detail).
func (sc SamplingConfig) Enabled() bool { return sc != SamplingConfig{} }

// Validate checks the phase layout. The zero value is always valid.
func (sc SamplingConfig) Validate() error {
	if !sc.Enabled() {
		return nil
	}
	if sc.Interval == 0 {
		return fmt.Errorf("gemsys: sampling interval must be positive")
	}
	if sc.Detail == 0 {
		return fmt.Errorf("gemsys: sampling detail window must be positive")
	}
	if sc.Detail+sc.Warmup > sc.Interval {
		return fmt.Errorf("gemsys: sampling detail+warmup (%d+%d) exceeds interval %d",
			sc.Detail, sc.Warmup, sc.Interval)
	}
	return nil
}

// String renders the config as U/W/D for labels and error messages.
func (sc SamplingConfig) String() string {
	if !sc.Enabled() {
		return "full-detail"
	}
	return fmt.Sprintf("u%d-w%d-d%d", sc.Interval, sc.Warmup, sc.Detail)
}

// ParseSamplingConfig parses a config from its String form
// ("u50000-w4000-d2000") or a bare "interval,warmup,detail" triple.
// "full-detail" and "" return the zero value (sampling off). The result
// is validated.
func ParseSamplingConfig(s string) (SamplingConfig, error) {
	var sc SamplingConfig
	switch s {
	case "", "full-detail":
		return sc, nil
	}
	if _, err := fmt.Sscanf(s, "u%d-w%d-d%d", &sc.Interval, &sc.Warmup, &sc.Detail); err != nil {
		if _, err := fmt.Sscanf(s, "%d,%d,%d", &sc.Interval, &sc.Warmup, &sc.Detail); err != nil {
			return SamplingConfig{}, fmt.Errorf(
				"gemsys: sampling config %q: want uU-wW-dD or U,W,D (e.g. %s)", s, DefaultSamplingConfig())
		}
	}
	if err := sc.Validate(); err != nil {
		return SamplingConfig{}, err
	}
	return sc, nil
}

// evalPhase is the sampler's position within the current interval.
type evalPhase uint8

const (
	phaseDetail evalPhase = iota
	// phaseDetailPre is the detailed warm-up prefix of a non-anchor
	// window: records retire through the full O3 model so the pipeline's
	// occupancy state (ROB slots, register-ready times, port contention)
	// rebuilds before measurement begins, but they contribute no CPI
	// sample — only event coverage. Without it every window after a
	// fast-forward stretch opens on a structurally fresh pipeline and
	// systematically under-reports stalls.
	phaseDetailPre
	phaseFF
	phaseWarm
)

// cpiSample is one detailed window's (cycles, instructions) pair on one
// core — the raw material of the CPI confidence proxy.
type cpiSample struct {
	cycles uint64
	insts  uint64
}

// sampler drives the detail → fast-forward → warm phase cycle and
// accumulates the per-core, per-stats-window quantities the extrapolated
// dumps are built from. Architectural counts (instructions, micro-ops,
// loads, stores, branches) are exact — every record is observed in every
// phase; cycle time and µarch event counters are measured only inside
// detailed windows and scaled by the instruction coverage at dump time.
type sampler struct {
	sc    SamplingConfig
	o3    []*cpu.O3
	phase evalPhase
	// base anchors the interval grid: it is the retired-record count at
	// the last m5 reset, so every stats window opens with a detailed
	// window regardless of where the reset fell in the previous grid.
	base uint64
	// dwarm is the detailed warm-up prefix length (phaseDetailPre) of
	// every non-anchor window: half the detailed window, clamped to the
	// interval's slack. The anchor window (the first after a reset) gets
	// no prefix — it must open at the reset itself so the request's
	// wake-up transient is measured, never discarded.
	dwarm uint64

	// Exact per-core architectural counts for the current stats window.
	totInsts []uint64
	totUops  []uint64
	loads    []uint64
	stores   []uint64
	branches []uint64

	// Detailed-phase accumulators. evtInsts counts every record that
	// retired through the full O3 model (warm-up prefix included) — the
	// coverage that scales the µarch event counters at dump time.
	// sampInsts/sampCycles/samples hold only measured-window quantities,
	// the raw material of the CPI estimate.
	evtInsts   []uint64
	sampInsts  []uint64
	sampCycles []uint64
	samples    [][]cpiSample

	// Open detailed-window cursors.
	winStart []uint64 // per-core commit time at window open
	winInsts []uint64 // per-core instructions committed in the open window
}

func newSampler(sc SamplingConfig, o3 []*cpu.O3) *sampler {
	n := len(o3)
	s := &sampler{
		sc:         sc,
		o3:         o3,
		totInsts:   make([]uint64, n),
		totUops:    make([]uint64, n),
		loads:      make([]uint64, n),
		stores:     make([]uint64, n),
		branches:   make([]uint64, n),
		evtInsts:   make([]uint64, n),
		sampInsts:  make([]uint64, n),
		sampCycles: make([]uint64, n),
		samples:    make([][]cpiSample, n),
		winStart:   make([]uint64, n),
		winInsts:   make([]uint64, n),
	}
	s.dwarm = sc.Detail / 2
	if slack := sc.Interval - sc.Detail - sc.Warmup; s.dwarm > slack {
		s.dwarm = slack
	}
	// Every interval leads with its detailed window, so the run opens in
	// measurement mode on whatever (cold) state the restore left behind.
	s.phase = phaseDetail
	s.openWindows()
	return s
}

func (s *sampler) phaseOf(retired uint64) evalPhase {
	rel := retired - s.base
	off := rel % s.sc.Interval
	var pre uint64
	if rel >= s.sc.Interval {
		pre = s.dwarm
	}
	switch {
	case off < pre:
		return phaseDetailPre
	case off < pre+s.sc.Detail:
		return phaseDetail
	case off >= s.sc.Interval-s.sc.Warmup:
		return phaseWarm
	default:
		return phaseFF
	}
}

// openWindows snapshots each core's commit clock as the start of a
// detailed window.
func (s *sampler) openWindows() {
	for ci, o := range s.o3 {
		s.winStart[ci] = o.Now()
		s.winInsts[ci] = 0
	}
}

// closeWindows folds the open detailed window into the accumulators and
// records a CPI sample for every core that committed instructions in it.
func (s *sampler) closeWindows() {
	for ci, o := range s.o3 {
		dc := o.Now() - s.winStart[ci]
		s.sampCycles[ci] += dc
		if s.winInsts[ci] > 0 {
			s.samples[ci] = append(s.samples[ci], cpiSample{cycles: dc, insts: s.winInsts[ci]})
		}
	}
}

// account tallies one retired record into the exact architectural counts
// (and the open detailed window, when measuring). Idle pseudo-records
// advance time but are not instructions.
func (s *sampler) account(ci int, rec *isa.TraceRec) {
	if rec.Class == isa.ClassIdle {
		return
	}
	s.totInsts[ci]++
	s.totUops[ci] += uint64(rec.MicroOps)
	switch rec.Class {
	case isa.ClassLoad:
		s.loads[ci]++
	case isa.ClassStore:
		s.stores[ci]++
	case isa.ClassBranch, isa.ClassJump, isa.ClassCall, isa.ClassRet:
		s.branches[ci]++
	}
	switch s.phase {
	case phaseDetailPre:
		s.evtInsts[ci]++
	case phaseDetail:
		s.evtInsts[ci]++
		s.sampInsts[ci]++
		s.winInsts[ci]++
	}
}

// accountBatch folds a bulk-fast-forwarded record batch into the exact
// architectural counts. Bulk batches never run in a detailed phase, so
// the open-window cursors are untouched.
func (s *sampler) accountBatch(ci int, bc *cpu.BatchCounts) {
	s.totInsts[ci] += bc.Insts
	s.totUops[ci] += bc.MicroOps
	s.loads[ci] += bc.Loads
	s.stores[ci] += bc.Stores
	s.branches[ci] += bc.Branches
}

// sprintFold folds one core's functional-sprint census into the exact
// architectural counts — the sprint-lane analog of accountBatch. Idle
// events need no folding: like idle pseudo-records on the recording lane
// they occupy retired slots but are not instructions.
func (s *sampler) sprintFold(ci int, insts uint64, cnt isa.ClassCounts) {
	s.totInsts[ci] += insts
	s.totUops[ci] += cnt.MicroOps
	s.loads[ci] += cnt.Loads
	s.stores[ci] += cnt.Stores
	s.branches[ci] += cnt.Branches
}

// bulkRoom returns how many records may retire through the bulk
// fast-forward lane before the current phase ends. Zero in a detailed
// phase.
func (s *sampler) bulkRoom(retired uint64) uint64 {
	off := (retired - s.base) % s.sc.Interval
	switch s.phase {
	case phaseFF:
		return s.sc.Interval - s.sc.Warmup - off
	case phaseWarm:
		return s.sc.Interval - off
	}
	return 0
}

// advance moves the phase machine after a record retired. Leaving the
// detailed phase closes the open windows; entering it opens fresh ones.
func (s *sampler) advance(retired uint64) {
	next := s.phaseOf(retired)
	if next == s.phase {
		return
	}
	if s.phase == phaseDetail {
		s.closeWindows()
	}
	if next == phaseDetail {
		s.openWindows()
	}
	s.phase = next
}

// reset starts a new stats window (the m5 reset-stats operation): all
// accumulators clear and the interval grid re-anchors at the current
// retired count, so the new stats window begins with a detailed window —
// the request's wake-up and first touches are always measured, never
// extrapolated from a different region.
func (s *sampler) reset(retired uint64) {
	for ci := range s.o3 {
		s.totInsts[ci] = 0
		s.totUops[ci] = 0
		s.loads[ci] = 0
		s.stores[ci] = 0
		s.branches[ci] = 0
		s.evtInsts[ci] = 0
		s.sampInsts[ci] = 0
		s.sampCycles[ci] = 0
		s.samples[ci] = s.samples[ci][:0]
	}
	s.base = retired
	s.phase = phaseDetail
	s.openWindows()
}

// estimateCycles extrapolates one core's stats-window cycle count from
// its measured windows. The first detailed window is its own stratum:
// the interval grid re-anchors at every m5 reset, so that window measures
// the request's wake-up and first touches — a region whose CPI is
// systematically unlike the steady state that follows. Its cycles enter
// the estimate exactly; the remaining unmeasured instructions extrapolate
// from the pooled CPI of the later windows. With fewer than two windows
// the plain ratio estimate is all there is.
func (s *sampler) estimateCycles(ci int) uint64 {
	tot := s.totInsts[ci]
	if s.sampInsts[ci] == 0 || tot == 0 {
		return 0
	}
	if wins := s.samples[ci]; len(wins) >= 2 {
		anchor := wins[0]
		var rc, ri uint64
		for _, w := range wins[1:] {
			rc += w.cycles
			ri += w.insts
		}
		if ri > 0 && tot >= anchor.insts {
			rest := float64(tot-anchor.insts) * float64(rc) / float64(ri)
			return anchor.cycles + uint64(rest+0.5)
		}
	}
	return uint64(float64(s.sampCycles[ci])*float64(tot)/float64(s.sampInsts[ci]) + 0.5)
}

// meta summarizes one core's sampling quality for the dump.
func (s *sampler) meta(ci int) stats.SampleMeta {
	m := stats.SampleMeta{
		Windows:       len(s.samples[ci]),
		SampledInsts:  s.evtInsts[ci],
		TotalInsts:    s.totInsts[ci],
		SampledCycles: s.sampCycles[ci],
	}
	n := len(s.samples[ci])
	if n == 0 {
		return m
	}
	var sum float64
	cpis := make([]float64, n)
	for i, w := range s.samples[ci] {
		cpis[i] = float64(w.cycles) / float64(w.insts)
		sum += cpis[i]
	}
	m.CPIMean = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, c := range cpis {
			d := c - m.CPIMean
			ss += d * d
		}
		m.CPIStdErr = math.Sqrt(ss / float64(n-1) / float64(n))
	}
	return m
}

// dump builds an extrapolated stats.Dump at an m5 dump-stats operation.
// A detailed window open at dump time contributes its partial measurement
// and reopens, so mid-window dumps lose nothing. Exact counts pass
// through; measured counters scale by f = totalInsts/sampledInsts. A core
// that saw no detailed instructions this window (possible only when the
// stats window is shorter than one sampling interval) reports zero for the
// extrapolated counters and Windows=0 in its metadata.
func (s *sampler) dump(m *Machine, label string) stats.Dump {
	if s.phase == phaseDetail {
		s.closeWindows()
		s.openWindows()
	}
	d := stats.Dump{Label: label}
	for ci := range s.o3 {
		meas := m.coreStats(ci)
		var f float64
		if s.evtInsts[ci] > 0 {
			f = float64(s.totInsts[ci]) / float64(s.evtInsts[ci])
		}
		scale := func(v uint64) uint64 {
			return uint64(float64(v)*f + 0.5)
		}
		d.Cores = append(d.Cores, stats.CoreStats{
			Cycles:      s.estimateCycles(ci),
			Insts:       s.totInsts[ci],
			MicroOps:    s.totUops[ci],
			Loads:       s.loads[ci],
			Stores:      s.stores[ci],
			Branches:    s.branches[ci],
			Mispredicts: scale(meas.Mispredicts),
			L1IAccesses: scale(meas.L1IAccesses),
			L1IMisses:   scale(meas.L1IMisses),
			L1DAccesses: scale(meas.L1DAccesses),
			L1DMisses:   scale(meas.L1DMisses),
			L2Accesses:  scale(meas.L2Accesses),
			L2Misses:    scale(meas.L2Misses),
			ITLBMisses:  scale(meas.ITLBMisses),
			DTLBMisses:  scale(meas.DTLBMisses),
		})
		d.Sampling = append(d.Sampling, s.meta(ci))
	}
	return d
}

// orderCoresByTime fills dst with core indices sorted ascending by local
// commit time, index order breaking ties — so the core furthest behind in
// virtual time retires first, approximating a globally ordered interleave
// on the shared DRAM channel for any core count. dst and times must have
// equal length.
func orderCoresByTime(dst []int, times []uint64) {
	for i := range dst {
		dst[i] = i
	}
	// Insertion sort: core counts are tiny (2 today) and the common case
	// is already-sorted, so this beats sort.Slice's interface overhead in
	// the retire loop.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0; j-- {
			a, b := dst[j-1], dst[j]
			if times[a] > times[b] || (times[a] == times[b] && a > b) {
				dst[j-1], dst[j] = b, a
			} else {
				break
			}
		}
	}
}
