package mem

import "svbench/internal/trace"

// DRAMConfig describes the memory channel behind the last-level caches.
type DRAMConfig struct {
	Latency  uint64 // device access latency in CPU cycles
	BusCycle uint64 // channel occupancy per line transfer
}

// DRAM is a single shared memory channel with queueing: overlapping
// requests from both cores serialize on the channel, which is how the
// hotel workloads' L2 miss storms turn into the large cycle counts the
// thesis reports.
type DRAM struct {
	cfg      DRAMConfig
	nextFree uint64
	Accesses uint64
}

// NewDRAM returns a DRAM channel with the given timing.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Latency == 0 {
		cfg.Latency = 180
	}
	if cfg.BusCycle == 0 {
		cfg.BusCycle = 16
	}
	return &DRAM{cfg: cfg}
}

// Access issues a line fill at time now and returns its completion time.
func (d *DRAM) Access(now uint64) uint64 {
	d.Accesses++
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	d.nextFree = start + d.cfg.BusCycle
	return start + d.cfg.Latency
}

// Reset clears channel occupancy and counters.
func (d *DRAM) Reset() {
	d.nextFree = 0
	d.Accesses = 0
}

// TLBConfig describes a TLB.
type TLBConfig struct {
	Entries     int
	PageBits    uint   // 12 for 4 KiB pages
	MissPenalty uint64 // page-walk cost in cycles (page-walk caches folded in)
}

// TLB is a fully-associative LRU translation buffer. The simulator uses a
// flat physical address space, so the TLB models translation *cost* only.
type TLB struct {
	cfg    TLBConfig
	pages  map[uint64]uint64 // page -> last-use tick
	tick   uint64
	Hits   uint64
	Misses uint64
}

// NewTLB returns a TLB with the given configuration.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.Entries == 0 {
		cfg.Entries = 64
	}
	if cfg.PageBits == 0 {
		cfg.PageBits = 12
	}
	if cfg.MissPenalty == 0 {
		cfg.MissPenalty = 30
	}
	return &TLB{cfg: cfg, pages: make(map[uint64]uint64, cfg.Entries)}
}

// Access translates addr, returning the added latency (0 on hit).
func (t *TLB) Access(addr uint64) uint64 {
	t.tick++
	page := addr >> t.cfg.PageBits
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.tick
		t.Hits++
		return 0
	}
	t.Misses++
	if len(t.pages) >= t.cfg.Entries {
		// Evict LRU.
		var victim uint64
		oldest := ^uint64(0)
		for p, use := range t.pages {
			if use < oldest {
				oldest = use
				victim = p
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.tick
	return t.cfg.MissPenalty
}

// Warm touches addr's page, updating residency and LRU age exactly as
// Access would but without counting hits/misses or returning a penalty.
func (t *TLB) Warm(addr uint64) {
	t.tick++
	page := addr >> t.cfg.PageBits
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.tick
		return
	}
	if len(t.pages) >= t.cfg.Entries {
		var victim uint64
		oldest := ^uint64(0)
		for p, use := range t.pages {
			if use < oldest {
				oldest = use
				victim = p
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.tick
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	t.pages = make(map[uint64]uint64, t.cfg.Entries)
}

// ResetStats zeroes counters.
func (t *TLB) ResetStats() { t.Hits, t.Misses = 0, 0 }

// HierConfig configures one core's cache hierarchy.
type HierConfig struct {
	L1I, L1D, L2 CacheConfig
	ITLB, DTLB   TLBConfig
}

// DefaultHierConfig mirrors Table 4.1 of the thesis.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:  CacheConfig{Name: "l1i", Size: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 2},
		L1D:  CacheConfig{Name: "l1d", Size: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 3},
		L2:   CacheConfig{Name: "l2", Size: 512 << 10, LineSize: 64, Assoc: 4, HitLatency: 14},
		ITLB: TLBConfig{Entries: 64, PageBits: 12, MissPenalty: 24},
		DTLB: TLBConfig{Entries: 64, PageBits: 12, MissPenalty: 30},
	}
}

// Hierarchy is one core's private cache stack (L1I + L1D over a private
// unified L2) attached to the shared DRAM channel.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	ITLB, DTLB   *TLB
	DRAM         *DRAM
	peer         *Hierarchy
	// CoherenceInvals counts lines invalidated here by peer writes.
	CoherenceInvals uint64

	tr   *trace.Tracer
	core uint8
}

// AttachTracer routes this hierarchy's miss events to tr, stamped with the
// owning core's id. A nil tracer keeps the hot path event-free.
func (h *Hierarchy) AttachTracer(tr *trace.Tracer, core int) {
	h.tr = tr
	h.core = uint8(core)
}

// RegisterStats publishes the hierarchy's counters under prefix (e.g.
// "machine.core1") in the registry. The caches and TLBs keep incrementing
// their own fields; the registry reads the live pointers at dump time.
func (h *Hierarchy) RegisterStats(r *trace.Registry, prefix string) {
	for _, c := range []struct {
		name  string
		cache *Cache
	}{{"l1i", h.L1I}, {"l1d", h.L1D}, {"l2", h.L2}} {
		c := c
		r.Counter(prefix+"."+c.name+".accesses", c.name+" cache accesses", &c.cache.Stats.Accesses)
		r.Counter(prefix+"."+c.name+".misses", c.name+" cache misses", &c.cache.Stats.Misses)
		r.Formula(prefix+"."+c.name+".missRate", c.name+" miss ratio", func() float64 {
			return c.cache.Stats.MissRate()
		})
	}
	r.Counter(prefix+".itlb.misses", "instruction TLB misses", &h.ITLB.Misses)
	r.Counter(prefix+".dtlb.misses", "data TLB misses", &h.DTLB.Misses)
	r.Counter(prefix+".coherence.invals", "lines invalidated by peer writes", &h.CoherenceInvals)
}

// NewHierarchy builds a hierarchy over a shared DRAM channel.
func NewHierarchy(cfg HierConfig, dram *DRAM) *Hierarchy {
	return &Hierarchy{
		L1I:  NewCache(cfg.L1I),
		L1D:  NewCache(cfg.L1D),
		L2:   NewCache(cfg.L2),
		ITLB: NewTLB(cfg.ITLB),
		DTLB: NewTLB(cfg.DTLB),
		DRAM: dram,
	}
}

// SetPeer wires the other core's hierarchy for write-invalidate coherence.
func (h *Hierarchy) SetPeer(p *Hierarchy) { h.peer = p }

// remoteInvalidate drops the line from the peer's caches; returns extra
// latency when a remote dirty copy had to be transferred.
func (h *Hierarchy) remoteInvalidate(addr uint64) uint64 {
	if h.peer == nil {
		return 0
	}
	var extra uint64
	if p, d := h.peer.L1D.Invalidate(addr); p {
		h.peer.CoherenceInvals++
		if d {
			extra = 30 // cache-to-cache transfer of a modified line
		}
	}
	if p, d := h.peer.L2.Invalidate(addr); p {
		h.peer.CoherenceInvals++
		if d && extra == 0 {
			extra = 40
		}
	}
	return extra
}

// FetchI performs an instruction fetch of the line containing addr at time
// now, returning its completion time.
func (h *Hierarchy) FetchI(now uint64, addr uint64) uint64 {
	lat := h.ITLB.Access(addr)
	if lat != 0 && h.tr != nil {
		h.tr.EmitAt(trace.EvTLBMiss, h.core, now, addr, trace.LvlITLB, addr)
	}
	lat += h.L1I.Config().HitLatency
	if r := h.L1I.Access(addr, false); !r.Hit {
		if h.tr != nil {
			h.tr.EmitAt(trace.EvCacheMiss, h.core, now, addr, trace.LvlL1I, addr)
		}
		lat += h.L2.Config().HitLatency
		if r2 := h.L2.Access(addr, false); !r2.Hit {
			if h.tr != nil {
				h.tr.EmitAt(trace.EvCacheMiss, h.core, now, addr, trace.LvlL2, addr)
			}
			done := h.DRAM.Access(now + lat)
			return done
		}
	}
	return now + lat
}

// AccessD performs a data access at time now, returning completion time.
func (h *Hierarchy) AccessD(now uint64, addr uint64, write bool) uint64 {
	lat := h.DTLB.Access(addr)
	if lat != 0 && h.tr != nil {
		h.tr.EmitAt(trace.EvTLBMiss, h.core, now, addr, trace.LvlDTLB, addr)
	}
	lat += h.L1D.Config().HitLatency
	var extra uint64
	if write {
		extra = h.remoteInvalidate(addr)
	}
	r := h.L1D.Access(addr, write)
	if !r.Hit {
		if h.tr != nil {
			h.tr.EmitAt(trace.EvCacheMiss, h.core, now, addr, trace.LvlL1D, addr)
		}
		if !write {
			// A read miss may find the only valid copy dirty in the
			// peer; model the transfer.
			extra += h.remoteInvalidate(addr)
		}
		lat += h.L2.Config().HitLatency
		if r2 := h.L2.Access(addr, write); !r2.Hit {
			if h.tr != nil {
				h.tr.EmitAt(trace.EvCacheMiss, h.core, now, addr, trace.LvlL2, addr)
			}
			done := h.DRAM.Access(now + lat + extra)
			return done
		}
	}
	return now + lat + extra
}

// warmRemoteInvalidate mirrors remoteInvalidate's state transitions (line
// drops in the peer) without bumping coherence counters or returning
// latency.
func (h *Hierarchy) warmRemoteInvalidate(addr uint64) {
	if h.peer == nil {
		return
	}
	h.peer.L1D.Drop(addr)
	h.peer.L2.Drop(addr)
}

// WarmFetchI performs a functional-warming instruction fetch: the ITLB,
// L1I and (on an L1I miss) L2 see the same residency/LRU updates as a
// timed FetchI, but no stats counters move and no latency is modeled.
func (h *Hierarchy) WarmFetchI(addr uint64) {
	h.ITLB.Warm(addr)
	if !h.L1I.Warm(addr, false) {
		h.L2.Warm(addr, false)
	}
}

// WarmAccessD performs a functional-warming data access, mirroring
// AccessD's state transitions (including write-invalidate coherence in the
// peer) at zero modeled latency and with no stats counters.
func (h *Hierarchy) WarmAccessD(addr uint64, write bool) {
	h.DTLB.Warm(addr)
	if write {
		h.warmRemoteInvalidate(addr)
	}
	if !h.L1D.Warm(addr, write) {
		if !write {
			h.warmRemoteInvalidate(addr)
		}
		h.L2.Warm(addr, write)
	}
}

// Flush empties all caches and TLBs (checkpoint restore starts cold, as
// gem5 does when switching CPU models).
func (h *Hierarchy) Flush() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.L2.Flush()
	h.ITLB.Flush()
	h.DTLB.Flush()
}

// ResetStats zeroes all counters without touching contents (the m5
// reset-stats operation).
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.ITLB.ResetStats()
	h.DTLB.ResetStats()
	h.CoherenceInvals = 0
}
