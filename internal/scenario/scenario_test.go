package scenario

import (
	"bytes"
	"strings"
	"testing"

	"svbench/internal/faults"
	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/loadgen"
)

func specByName(t *testing.T, name string) harness.Spec {
	t.Helper()
	for _, sp := range harness.AllSpecs() {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("no spec %q in catalog", name)
	return harness.Spec{}
}

func testConfig(t *testing.T, s Scenario) Config {
	return Config{
		Scenario: s,
		Cfg:      gemsys.DefaultConfig(isa.RV64),
		Spec:     specByName(t, "fibonacci-go"),
		Seed:     7,
	}
}

func mustByName(t *testing.T, name string) Scenario {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) < 6 {
		t.Fatalf("catalog has %d scenarios, want >= 6", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if s.Name == "" || s.Description == "" {
			t.Fatalf("scenario %+v missing name/description", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.RPS <= 0 || s.Duration == 0 {
			t.Fatalf("scenario %s has no load shape", s.Name)
		}
		for _, ph := range s.Phases {
			if ph.Window.IsZero() || ph.Window.Empty() {
				t.Fatalf("scenario %s phase %s has a zero/empty window", s.Name, ph.Name)
			}
			if ph.Window.End > s.Duration+s.RecoveryDeadline {
				t.Fatalf("scenario %s phase %s window ends past any observable traffic", s.Name, ph.Name)
			}
		}
	}
	for _, want := range []string{"baseline", "transient-blip", "outage-and-recover",
		"latency-spike", "retry-storm", "degradation-under-churn"} {
		if !seen[want] {
			t.Fatalf("catalog missing scenario %q", want)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("ByName accepted an unknown scenario")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("unnamed scenario accepted")
	}
	s := mustByName(t, "transient-blip")
	s.Phases[0].Window = faults.Window{}
	if _, err := Run(testConfig(t, s)); err == nil {
		t.Fatal("zero phase window accepted")
	}
	s = mustByName(t, "transient-blip")
	s.Phases[0].Rules = nil
	if _, err := Run(testConfig(t, s)); err == nil {
		t.Fatal("ruleless phase accepted")
	}
}

// TestBaselinePassesCleanly pins the control scenario: no faults, no
// retries, everything in the steady bucket, verdict PASS.
func TestBaselinePassesCleanly(t *testing.T) {
	res, err := Run(testConfig(t, mustByName(t, "baseline")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Windowed {
		t.Fatal("baseline claims fault windows")
	}
	if res.Faults.Injected != 0 || res.Load.Retries != 0 || res.Load.Failed != 0 {
		t.Fatalf("baseline injected faults: %+v retries=%d failed=%d",
			res.Faults, res.Load.Retries, res.Load.Failed)
	}
	if res.Pre.Invocations != len(res.Load.Invocations) {
		t.Fatalf("steady bucket holds %d of %d invocations",
			res.Pre.Invocations, len(res.Load.Invocations))
	}
	if !res.SLOPass || !res.Recovered {
		t.Fatalf("baseline verdict: sloPass=%v recovered=%v", res.SLOPass, res.Recovered)
	}
}

// TestRetryStorm pins the acceptance criterion: the retry-storm scenario
// shows a retry-count spike confined to the fault window and a
// measurable recovery time after it closes, visible in the report,
// the stats block and the Perfetto trace.
func TestRetryStorm(t *testing.T) {
	res, err := Run(testConfig(t, mustByName(t, "retry-storm")))
	if err != nil {
		t.Fatal(err)
	}
	if res.During.Retries == 0 {
		t.Fatal("no retry spike during the storm window")
	}
	if res.Pre.Retries != 0 || res.Post.Retries != 0 {
		t.Fatalf("retries leaked outside the window: pre=%d post=%d",
			res.Pre.Retries, res.Post.Retries)
	}
	if res.RecoveryNS == 0 {
		t.Fatal("retry storm left no measurable recovery time")
	}
	if !res.Recovered || !res.SLOPass {
		t.Fatalf("retry storm did not recover: recovered=%v sloPass=%v", res.Recovered, res.SLOPass)
	}
	table := res.Table()
	for _, want := range []string{"retry-storm", "recovery     SLO reattained", "verdict      PASS"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if !strings.Contains(res.StatsText, "scenario.during.retries") ||
		!strings.Contains(res.StatsText, "scenario.recoveryNS") {
		t.Error("stats text missing scenario.* entries")
	}
	tj := string(res.TraceJSON)
	for _, want := range []string{"fault-window", "scenario-recover", "invoke-retry", "scenario (chaos windows)"} {
		if !strings.Contains(tj, want) {
			t.Errorf("trace JSON missing %q", want)
		}
	}
}

// TestCatalogRunsAndPasses runs every library scenario once: all complete
// and all meet their calibrated SLOs on the reference function/arch/seed.
func TestCatalogRunsAndPasses(t *testing.T) {
	var cfgs []Config
	for _, s := range Catalog() {
		cfgs = append(cfgs, testConfig(t, s))
	}
	results, errs := RunMany(cfgs, 0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", cfgs[i].Scenario.Name, err)
		}
	}
	for i, res := range results {
		name := cfgs[i].Scenario.Name
		if !res.SLOPass {
			t.Errorf("%s: calibrated SLO failed:\n%s", name, res.Table())
		}
		total := res.Pre.Invocations + res.During.Invocations + res.Post.Invocations
		if res.Windowed && total != len(res.Load.Invocations) {
			t.Errorf("%s: buckets hold %d of %d invocations", name, total, len(res.Load.Invocations))
		}
	}
}

// TestScenarioDeterminism is the scenario determinism gate: repeated runs
// and RunMany at different job counts produce byte-identical tables,
// stats text and trace JSON.
func TestScenarioDeterminism(t *testing.T) {
	mkCfgs := func() []Config {
		return []Config{
			testConfig(t, mustByName(t, "retry-storm")),
			testConfig(t, mustByName(t, "outage-and-recover")),
			testConfig(t, mustByName(t, "degradation-under-churn")),
		}
	}
	seq, errs := RunMany(mkCfgs(), 1)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("point %d (-j 1): %v", i, err)
		}
	}
	par, errs := RunMany(mkCfgs(), 4)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("point %d (-j 4): %v", i, err)
		}
	}
	solo, err := Run(mkCfgs()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if a, b := seq[i].Table(), par[i].Table(); a != b {
			t.Errorf("point %d: table differs between -j 1 and -j 4:\n--- j1\n%s--- j4\n%s", i, a, b)
		}
		if seq[i].StatsText != par[i].StatsText {
			t.Errorf("point %d: stats text differs between -j 1 and -j 4", i)
		}
		if !bytes.Equal(seq[i].TraceJSON, par[i].TraceJSON) {
			t.Errorf("point %d: trace JSON differs between -j 1 and -j 4", i)
		}
	}
	if solo.Table() != seq[0].Table() || solo.StatsText != seq[0].StatsText ||
		!bytes.Equal(solo.TraceJSON, seq[0].TraceJSON) {
		t.Error("solo run differs from swept run")
	}
}

// TestPhaseWindowsGateFaults cross-checks bucketing against the plan:
// every faulted attempt belongs to an invocation whose attempts ran
// while a window was open, and the fault ledger reconciles with the
// engine's per-attempt accounting.
func TestPhaseWindowsGateFaults(t *testing.T) {
	res, err := Run(testConfig(t, mustByName(t, "outage-and-recover")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Outages == 0 {
		t.Fatal("outage window injected nothing")
	}
	if res.Faults.Outages != res.Load.FaultedAttempts {
		t.Fatalf("ledger outages %d != engine faulted attempts %d",
			res.Faults.Outages, res.Load.FaultedAttempts)
	}
	for _, inv := range res.Load.Invocations {
		if inv.FaultedAttempts > 0 && inv.Arrive >= res.WindowEnd {
			t.Fatalf("invocation %d arrived at %d, after the last window %d, yet was faulted",
				inv.ID, inv.Arrive, res.WindowEnd)
		}
	}
}

// TestScenarioSeedSensitivity: a different seed must change the fault
// schedule for probabilistic scenarios (decorrelated PRNGs still react
// to the seed).
func TestScenarioSeedSensitivity(t *testing.T) {
	cfg := testConfig(t, mustByName(t, "retry-storm"))
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 8
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() == b.Table() && a.StatsText == b.StatsText {
		t.Fatal("different seeds produced identical scenario runs")
	}
}

var _ loadgen.AttemptHook = (*hook)(nil)
