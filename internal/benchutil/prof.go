// Package benchutil carries the small shared plumbing of the repo's
// benchmark commands (cmd/interpbench, cmd/sweepbench, cmd/loadbench):
// optional CPU and heap profiling behind the conventional -cpuprofile /
// -memprofile flags.
package benchutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling into cpuFile (if non-empty) and
// arranges for a heap profile to be written to memFile (if non-empty)
// when the returned stop function runs. Either path may be empty; with
// both empty the call is a no-op and stop is still safe to invoke. The
// caller must invoke stop before exiting for the profiles to be complete.
func StartProfiles(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("benchutil: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("benchutil: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("benchutil: -memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize reachable-heap accounting
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("benchutil: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
