package faults

import "testing"

func TestWindowContainsBoundaries(t *testing.T) {
	cases := []struct {
		name string
		w    Window
		t    uint64
		want bool
	}{
		{"zero window always active at 0", Window{}, 0, true},
		{"zero window always active late", Window{}, 1 << 60, true},
		{"before start", Window{Start: 100, End: 200}, 99, false},
		{"exactly at start", Window{Start: 100, End: 200}, 100, true},
		{"inside", Window{Start: 100, End: 200}, 150, true},
		{"exactly at end (half-open)", Window{Start: 100, End: 200}, 200, false},
		{"after end", Window{Start: 100, End: 200}, 201, false},
		{"zero-length window excludes its own instant", Window{Start: 100, End: 100}, 100, false},
		{"inverted window is empty", Window{Start: 200, End: 100}, 150, false},
		{"window starting at 0 with an end is not the zero window", Window{Start: 0, End: 50}, 0, true},
		{"window starting at 0 closes half-open", Window{Start: 0, End: 50}, 50, false},
	}
	for _, tc := range cases {
		if got := tc.w.Contains(tc.t); got != tc.want {
			t.Errorf("%s: Window%+v.Contains(%d) = %v, want %v", tc.name, tc.w, tc.t, got, tc.want)
		}
	}
}

func TestWindowClassification(t *testing.T) {
	if !(Window{}).IsZero() || (Window{}).Empty() {
		t.Error("zero window must be IsZero and not Empty")
	}
	for _, w := range []Window{{Start: 100, End: 100}, {Start: 200, End: 100}, {Start: 5, End: 0}} {
		if w.IsZero() || !w.Empty() {
			t.Errorf("Window%+v should be empty, not zero", w)
		}
		if w.Duration() != 0 {
			t.Errorf("Window%+v.Duration() = %d, want 0", w, w.Duration())
		}
	}
	if d := (Window{Start: 100, End: 250}).Duration(); d != 150 {
		t.Errorf("Duration = %d, want 150", d)
	}
}

func TestWindowOverlaps(t *testing.T) {
	cases := []struct {
		name string
		a, b Window
		want bool
	}{
		{"disjoint", Window{Start: 0, End: 100}, Window{Start: 200, End: 300}, false},
		{"touching at boundary (half-open)", Window{Start: 0, End: 100}, Window{Start: 100, End: 200}, false},
		{"overlapping", Window{Start: 0, End: 150}, Window{Start: 100, End: 200}, true},
		{"nested", Window{Start: 0, End: 1000}, Window{Start: 100, End: 200}, true},
		{"zero overlaps non-empty", Window{}, Window{Start: 100, End: 200}, true},
		{"zero overlaps zero", Window{}, Window{}, true},
		{"empty overlaps nothing", Window{Start: 100, End: 100}, Window{Start: 0, End: 1000}, false},
		{"empty vs zero", Window{Start: 100, End: 100}, Window{}, false},
	}
	for _, tc := range cases {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%s: %+v.Overlaps(%+v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("%s (sym): %+v.Overlaps(%+v) = %v, want %v", tc.name, tc.b, tc.a, got, tc.want)
		}
	}
}

func TestPlanActiveAt(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Kind: ErrorReply, Prob: 1, Window: Window{Start: 100, End: 200}},
		{Kind: LatencySpike, Prob: 1, Mult: 4}, // unwindowed: always active
		{Kind: DropMsg, Channel: ClientResp, Prob: 1, Window: Window{Start: 150, End: 250}},
		{Kind: DelayMsg, Channel: ClientResp, Prob: 1, Delay: 7, Window: Window{Start: 300, End: 300}}, // zero-length
	}}
	cases := []struct {
		t    uint64
		want []int
	}{
		{0, []int{1}},
		{100, []int{0, 1}},
		{150, []int{0, 1, 2}}, // overlapping windows both active
		{199, []int{0, 1, 2}},
		{200, []int{1, 2}}, // first window closed exactly at its end tick
		{249, []int{1, 2}},
		{250, []int{1}},
		{300, []int{1}}, // zero-length window never activates
	}
	for _, tc := range cases {
		got := p.ActiveAt(tc.t)
		if len(got) != len(tc.want) {
			t.Errorf("ActiveAt(%d) = %v, want %v", tc.t, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ActiveAt(%d) = %v, want %v", tc.t, got, tc.want)
				break
			}
		}
	}
}

func TestPlanWindowSpanAndBoundaries(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Kind: LatencySpike, Prob: 1, Mult: 2}, // unwindowed: excluded from span
		{Kind: ErrorReply, Prob: 1, Window: Window{Start: 500, End: 800}},
		{Kind: DropMsg, Channel: ClientResp, Prob: 1, Window: Window{Start: 100, End: 600}},
		{Kind: DelayMsg, Channel: ClientResp, Prob: 1, Window: Window{Start: 700, End: 700}}, // empty: ignored
	}}
	span, ok := p.WindowSpan()
	if !ok || span.Start != 100 || span.End != 800 {
		t.Fatalf("WindowSpan = %+v, %v; want {100 800}, true", span, ok)
	}
	b := p.Boundaries()
	want := []uint64{100, 500, 600, 800}
	if len(b) != len(want) {
		t.Fatalf("Boundaries = %v, want %v", b, want)
	}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("Boundaries = %v, want %v", b, want)
		}
	}

	empty := &Plan{Rules: []Rule{{Kind: ErrorReply, Prob: 1}}}
	if _, ok := empty.WindowSpan(); ok {
		t.Error("WindowSpan of an unwindowed plan must report ok=false")
	}
	if bs := empty.Boundaries(); len(bs) != 0 {
		t.Errorf("Boundaries of an unwindowed plan = %v, want none", bs)
	}
}

// TestAttemptAtWindowGating pins the DES-level evaluation: outside every
// window the attempt passes untouched and burns no PRNG draws; inside,
// rules fire in plan order.
func TestAttemptAtWindowGating(t *testing.T) {
	plan := Plan{Seed: 11, Rules: []Rule{
		{Kind: Outage, Window: Window{Start: 1000, End: 2000}},
		{Kind: DropMsg, Channel: ClientResp, Prob: 1, Window: Window{Start: 3000, End: 4000}},
	}}
	in := NewInjector(plan)
	in.Arm()
	rngBefore := in.rng.s

	if f := in.AttemptAt(500); f.Faulted() {
		t.Fatalf("attempt before any window faulted: %+v", f)
	}
	if in.rng.s != rngBefore {
		t.Error("closed windows must not burn PRNG draws")
	}
	if f := in.AttemptAt(1000); !f.ErrorReply {
		t.Fatalf("attempt at outage window start = %+v, want ErrorReply", f)
	}
	if f := in.AttemptAt(2000); f.Faulted() {
		t.Fatalf("attempt at outage window end (half-open) faulted: %+v", f)
	}
	if f := in.AttemptAt(3500); !f.DropResponse {
		t.Fatalf("attempt inside drop window = %+v, want DropResponse", f)
	}
	if in.Report.Outages != 1 || in.Report.Dropped != 1 {
		t.Errorf("ledger = %+v, want 1 outage + 1 drop", in.Report)
	}

	var nilInj *Injector
	if f := nilInj.AttemptAt(1500); f.Faulted() {
		t.Error("nil injector must return the zero outcome")
	}
	disarmed := NewInjector(plan)
	if f := disarmed.AttemptAt(1500); f.Faulted() {
		t.Error("disarmed injector must return the zero outcome")
	}
}

// TestAttemptAtCombinesRules pins the fault-combination semantics: a
// dropped response suppresses corruption/delay of the same reply, spikes
// stack multiplicatively, and a drop of the request preempts later rules.
func TestAttemptAtCombinesRules(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Rules: []Rule{
		{Kind: DelayMsg, Channel: ClientResp, Prob: 1, Delay: 5000},
		{Kind: CorruptMsg, Channel: ClientResp, Prob: 1},
		{Kind: LatencySpike, Prob: 1, Mult: 8},
	}})
	in.Arm()
	f := in.AttemptAt(0)
	if f.DelayNS != 5000 || !f.BadReply || f.ServiceMult != 8 {
		t.Fatalf("combined outcome = %+v, want delay 5000 + bad reply + mult 8", f)
	}

	in2 := NewInjector(Plan{Seed: 3, Rules: []Rule{
		{Kind: DropMsg, Channel: ClientResp, Prob: 1},
		{Kind: CorruptMsg, Channel: ClientResp, Prob: 1},
		{Kind: DelayMsg, Channel: ClientResp, Prob: 1, Delay: 5000},
	}})
	in2.Arm()
	f2 := in2.AttemptAt(0)
	if !f2.DropResponse || f2.BadReply || f2.DelayNS != 0 {
		t.Fatalf("dropped reply outcome = %+v, want drop only (no corrupt/delay)", f2)
	}

	in3 := NewInjector(Plan{Seed: 3, Rules: []Rule{
		{Kind: DropMsg, Channel: ClientReq, Prob: 1},
		{Kind: LatencySpike, Prob: 1, Mult: 8},
	}})
	in3.Arm()
	f3 := in3.AttemptAt(0)
	if !f3.DropRequest || f3.ServiceMult != 0 {
		t.Fatalf("dropped request outcome = %+v, want immediate DropRequest", f3)
	}
}

// TestIPCFaultWindowed pins that the kernel-layer hook honours windows
// through SetNow with no PRNG draws while a window is closed.
func TestIPCFaultWindowed(t *testing.T) {
	in := NewInjector(Plan{Seed: 9, Rules: []Rule{
		{Kind: DropMsg, Channel: AnyChannel, Prob: 1, Window: Window{Start: 100, End: 200}},
	}})
	in.Arm()
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

	in.SetNow(50)
	rngBefore := in.rng.s
	if drop, _ := in.IPCFault(0, payload); drop {
		t.Fatal("rule fired outside its window")
	}
	if in.rng.s != rngBefore {
		t.Error("closed window burned a PRNG draw in IPCFault")
	}
	in.SetNow(150)
	if drop, _ := in.IPCFault(0, payload); !drop {
		t.Fatal("rule did not fire inside its window")
	}
	in.SetNow(200)
	if drop, _ := in.IPCFault(0, payload); drop {
		t.Fatal("rule fired at its half-open end boundary")
	}
}
