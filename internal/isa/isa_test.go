package isa

import "testing"

func TestMemLoadStoreRoundTrip(t *testing.T) {
	m := NewMem(4096)
	for _, sz := range []uint8{1, 2, 4, 8} {
		v := uint64(0x1122334455667788)
		m.Store(64, sz, v)
		got := m.Load(64, sz)
		mask := ^uint64(0)
		if sz < 8 {
			mask = (1 << (8 * sz)) - 1
		}
		if got != v&mask {
			t.Fatalf("sz=%d: %#x != %#x", sz, got, v&mask)
		}
	}
}

func TestMemLittleEndian(t *testing.T) {
	m := NewMem(64)
	m.Store(0, 4, 0x0A0B0C0D)
	if m.Data[0] != 0x0D || m.Data[3] != 0x0A {
		t.Fatalf("not little-endian: % x", m.Data[:4])
	}
}

func TestMemFaults(t *testing.T) {
	m := NewMem(64)
	for _, f := range []func(){
		func() { m.Load(60, 8) },
		func() { m.Store(64, 1, 0) },
		func() { m.Bytes(32, 33) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access must panic")
				}
			}()
			f()
		}()
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		sz   uint8
		want uint64
	}{
		{0x80, 1, 0xFFFFFFFFFFFFFF80},
		{0x7F, 1, 0x7F},
		{0x8000, 2, 0xFFFFFFFFFFFF8000},
		{0x80000000, 4, 0xFFFFFFFF80000000},
		{0x80000000, 8, 0x80000000},
	}
	for _, c := range cases {
		if got := SignExtend(c.v, c.sz); got != c.want {
			t.Errorf("SignExtend(%#x, %d) = %#x, want %#x", c.v, c.sz, got, c.want)
		}
	}
}

func TestProgramSymbols(t *testing.T) {
	p := &Program{
		TextBase: 0x1000, Text: []byte{1, 2, 3, 4},
		DataBase: 0x2000, Data: []byte{9},
		Syms: map[string]uint64{"f": 0x1000},
	}
	if p.SymAddr("f") != 0x1000 {
		t.Fatal("symbol lookup")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown symbol must panic")
		}
	}()
	p.SymAddr("ghost")
}

func TestProgramLoadInto(t *testing.T) {
	p := &Program{
		TextBase: 16, Text: []byte{0xAA, 0xBB},
		DataBase: 32, Data: []byte{0xCC},
	}
	m := NewMem(64)
	p.LoadInto(m)
	if m.Data[16] != 0xAA || m.Data[17] != 0xBB || m.Data[32] != 0xCC {
		t.Fatal("image not loaded")
	}
	if p.Size() != 3 {
		t.Fatalf("size %d", p.Size())
	}
}

func TestClassNames(t *testing.T) {
	if ClassLoad.String() != "load" || ClassIdle.String() != "idle" {
		t.Fatal("class names")
	}
	if Class(200).String() == "" {
		t.Fatal("unknown class must render")
	}
}
