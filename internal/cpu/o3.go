package cpu

import (
	"fmt"

	"svbench/internal/isa"
	"svbench/internal/mem"
	"svbench/internal/trace"
)

// O3Config parameterizes the detailed out-of-order model. Defaults mirror
// Table 4.1 of the thesis.
type O3Config struct {
	RenameWidth int // front-end width (fetch/decode/rename per cycle)
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	LQSize      int
	SQSize      int
	MulDivUnits int
	LoadPorts   int
	StorePorts  int

	MulLat            uint64
	DivLat            uint64
	EcallLat          uint64 // privilege-switch overhead on top of serialization
	MispredictPenalty uint64
	WakeLat           uint64 // cross-core wakeup latency after an IPC send

	BPred BPredConfig
}

// DefaultO3Config returns the thesis configuration: 192-entry ROB,
// 32-entry load and store queues, 4-wide front end.
func DefaultO3Config() O3Config {
	return O3Config{
		RenameWidth: 4, IssueWidth: 8, CommitWidth: 4,
		ROBSize: 192, LQSize: 32, SQSize: 32,
		MulDivUnits: 1, LoadPorts: 2, StorePorts: 1,
		MulLat: 3, DivLat: 16, EcallLat: 24,
		MispredictPenalty: 12, WakeLat: 60,
		BPred: DefaultBPredConfig(),
	}
}

// WindowStats accumulates per-core statistics within one m5 stats window.
type WindowStats struct {
	Insts       uint64
	MicroOps    uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	Mispredicts uint64
	StartCycle  uint64
}

// Coupler carries cross-core IPC ordering: commit times of FlagSend
// records, consumed by FlagRecv/idle records on the other core. Derived
// sequences model native services (the databases): their reply commits a
// fixed service latency after the request's commit.
type Coupler struct {
	commitAt map[uint64]uint64
	derived  map[uint64][]derivation // base seq -> dependents

	// floorSeq/floorTime summarize sends that happened during a purely
	// functional stretch (the sampled simulation's fast-forward): every
	// sequence at or below floorSeq is deemed committed no later than
	// floorTime. Kernel sequences are globally monotonic, so a single
	// high-water mark covers all of them.
	floorSeq  uint64
	floorTime uint64
}

type derivation struct {
	seq   uint64
	delay uint64
}

// NewCoupler returns an empty coupler.
func NewCoupler() *Coupler {
	return &Coupler{
		commitAt: map[uint64]uint64{},
		derived:  map[uint64][]derivation{},
	}
}

// Derive declares that sequence derived becomes ready delay cycles after
// base commits.
func (c *Coupler) Derive(base, derived, delay uint64) {
	if t, ok := c.commitAt[base]; ok {
		c.post(derived, t+delay)
		return
	}
	c.derived[base] = append(c.derived[base], derivation{seq: derived, delay: delay})
}

// post records that send sequence seq committed at cycle t, resolving any
// derived sequences transitively.
func (c *Coupler) post(seq, t uint64) {
	c.commitAt[seq] = t
	if deps, ok := c.derived[seq]; ok {
		delete(c.derived, seq)
		for _, d := range deps {
			c.post(d.seq, t+d.delay)
		}
	}
}

// ready returns the commit time of seq, if posted.
func (c *Coupler) ready(seq uint64) (uint64, bool) {
	if t, ok := c.commitAt[seq]; ok {
		return t, ok
	}
	if seq != 0 && seq <= c.floorSeq {
		return c.floorTime, true
	}
	return 0, false
}

// SetFloor marks every sequence at or below seq as committed by cycle t.
// The machine calls this after a functional fast-forward: sends executed
// during the sprint produced no timed records, so their (and their
// derivations') commit times collapse onto the sprint's end-of-time
// horizon. Pending derivations rooted at or below the floor resolve
// immediately; without this a post-sprint receive would wait forever on a
// base sequence that will never be posted.
func (c *Coupler) SetFloor(seq, t uint64) {
	if seq > c.floorSeq {
		c.floorSeq = seq
	}
	if t > c.floorTime {
		c.floorTime = t
	}
	for base := range c.derived {
		if base != 0 && base <= c.floorSeq {
			c.post(base, c.floorTime)
		}
	}
}

const ringWindow = 8192

type slotRing struct {
	cycle [ringWindow]uint64
	used  [ringWindow]uint8
	cap   uint8
}

func (r *slotRing) reserve(t uint64) uint64 {
	for {
		i := t % ringWindow
		if r.cycle[i] != t {
			r.cycle[i] = t
			r.used[i] = 0
		}
		if r.used[i] < r.cap {
			r.used[i]++
			return t
		}
		t++
	}
}

// O3 is the per-core detailed timing model. It replays the functional
// trace through an analytical out-of-order pipeline: in-order rename
// bounded by ROB/LQ/SQ occupancy and front-end width, dataflow-scheduled
// issue bounded by functional-unit ports, cache-timed memory operations,
// branch-predictor-driven fetch redirects, and in-order commit.
type O3 struct {
	Cfg     O3Config
	Hier    *mem.Hierarchy
	BP      *BPred
	coupler *Coupler

	// Front-end cursors.
	now          uint64 // cycle at which the next instruction renames
	renameCount  int    // instructions renamed at cycle `now`
	curFetchLine uint64
	lineReady    uint64

	// Register scoreboard: architectural reg -> value-ready cycle.
	regReady [34]uint64

	// Occupancy rings (commit times of the last N entries).
	robRing   []uint64
	robHead   int
	loadRing  []uint64
	loadHead  int
	storeRing []uint64
	storeHead int

	// Commit cursors.
	lastCommit     uint64
	commitCycle    uint64
	commitsAtCycle int

	// Execution ports.
	issueRing  slotRing
	mulDivRing slotRing
	loadPorts  slotRing
	storePorts slotRing

	// Store-to-load forwarding horizon: 8-byte-granule address ->
	// completion time of the most recent store.
	storeDone map[uint64]uint64

	Stats WindowStats

	// Observability (nil when tracing is disabled: the hot path then
	// pays only untaken nil-check branches).
	tr       *trace.Tracer
	core     uint8
	ecallLat *trace.Dist
}

// NewO3 builds a detailed core over a cache hierarchy.
func NewO3(cfg O3Config, hier *mem.Hierarchy, coupler *Coupler) *O3 {
	o := &O3{
		Cfg:       cfg,
		Hier:      hier,
		BP:        NewBPred(cfg.BPred),
		coupler:   coupler,
		robRing:   make([]uint64, cfg.ROBSize),
		loadRing:  make([]uint64, cfg.LQSize),
		storeRing: make([]uint64, cfg.SQSize),
		storeDone: map[uint64]uint64{},
		now:       1,
	}
	o.issueRing.cap = uint8(cfg.IssueWidth)
	o.mulDivRing.cap = uint8(cfg.MulDivUnits)
	o.loadPorts.cap = uint8(cfg.LoadPorts)
	o.storePorts.cap = uint8(cfg.StorePorts)
	return o
}

// Now returns the core's committed-time cursor.
func (o *O3) Now() uint64 { return o.lastCommit }

// AttachTracer enables event emission from the pipeline: branch
// mispredict redirects, cache/TLB misses (via the attached hierarchy),
// and syscall enter/exit pairs observed into ecallLat (may be nil).
func (o *O3) AttachTracer(tr *trace.Tracer, core int, ecallLat *trace.Dist) {
	o.tr = tr
	o.core = uint8(core)
	o.ecallLat = ecallLat
	o.Hier.AttachTracer(tr, core)
}

// RegisterStats registers the core's counters and formulas under prefix
// (e.g. "machine.core1.o3") in the hierarchical registry. Counters are
// live pointers into the window stats; the registry reads them at dump
// time, so registration adds nothing to the replay hot path.
func (o *O3) RegisterStats(r *trace.Registry, prefix string) {
	r.Counter(prefix+".insts", "instructions committed this stats window", &o.Stats.Insts)
	r.Counter(prefix+".microops", "micro-operations committed this stats window", &o.Stats.MicroOps)
	r.Counter(prefix+".loads", "load instructions committed", &o.Stats.Loads)
	r.Counter(prefix+".stores", "store instructions committed", &o.Stats.Stores)
	r.Counter(prefix+".branches", "control-flow instructions committed", &o.Stats.Branches)
	r.Counter(prefix+".mispredicts", "branch mispredict redirects", &o.Stats.Mispredicts)
	r.Counter(prefix+".bpred.lookups", "branch predictor lookups", &o.BP.Lookups)
	r.Func(prefix+".windowCycles", "cycles elapsed in the current stats window", o.WindowCycles)
	r.Formula(prefix+".cpi", "cycles per committed instruction", func() float64 {
		if o.Stats.Insts == 0 {
			return 0
		}
		return float64(o.WindowCycles()) / float64(o.Stats.Insts)
	})
	r.Formula(prefix+".bpred.mispredictRate", "mispredicts per predictor lookup", func() float64 {
		if o.BP.Lookups == 0 {
			return 0
		}
		return float64(o.BP.Mispredicts) / float64(o.BP.Lookups)
	})
}

// ResetPipeline returns the core to its just-built state over a fresh
// coupler — the in-place equivalent of NewO3, so statistics registered
// against this core's counters stay valid across a checkpoint restore.
func (o *O3) ResetPipeline(coupler *Coupler) {
	o.coupler = coupler
	o.now = 1
	o.renameCount = 0
	o.curFetchLine = 0
	o.lineReady = 0
	o.regReady = [34]uint64{}
	for i := range o.robRing {
		o.robRing[i] = 0
	}
	o.robHead = 0
	for i := range o.loadRing {
		o.loadRing[i] = 0
	}
	o.loadHead = 0
	for i := range o.storeRing {
		o.storeRing[i] = 0
	}
	o.storeHead = 0
	o.lastCommit = 0
	o.commitCycle = 0
	o.commitsAtCycle = 0
	o.issueRing = slotRing{cap: o.issueRing.cap}
	o.mulDivRing = slotRing{cap: o.mulDivRing.cap}
	o.loadPorts = slotRing{cap: o.loadPorts.cap}
	o.storePorts = slotRing{cap: o.storePorts.cap}
	o.storeDone = map[uint64]uint64{}
	o.BP.Flush()
	o.BP.ResetStats()
	o.Stats = WindowStats{}
}

// ErrWait is a sentinel: the record needs a coupling sequence that has not
// committed on the other core yet.
var ErrWait = fmt.Errorf("cpu: waiting for peer send")

// advanceFrontEnd accounts rename bandwidth: at most RenameWidth
// instructions enter the ROB per cycle.
func (o *O3) advanceFrontEnd() {
	o.renameCount++
	if o.renameCount >= o.Cfg.RenameWidth {
		o.now++
		o.renameCount = 0
	}
}

func (o *O3) bump(t uint64) {
	if t > o.now {
		o.now = t
		o.renameCount = 0
	}
}

// Retire replays one trace record, returning its commit cycle.
// It returns ErrWait when the record waits on a peer send that has not
// been replayed yet.
func (o *O3) Retire(rec *isa.TraceRec) (uint64, error) {
	// Idle pseudo-record: the core sleeps until the wake arrives.
	if rec.Class == isa.ClassIdle {
		t, ok := o.coupler.ready(rec.Seq)
		if !ok {
			return 0, ErrWait
		}
		o.bump(t + o.Cfg.WakeLat)
		if o.lastCommit < o.now {
			o.lastCommit = o.now
		}
		return o.now, nil
	}
	if rec.Flags&isa.FlagRecv != 0 {
		// The receiving ecall cannot complete before the sender commits.
		t, ok := o.coupler.ready(rec.Seq)
		if !ok {
			return 0, ErrWait
		}
		o.bump(t + o.Cfg.WakeLat)
	}

	// --- Fetch: instruction cache access per line. ---
	line := rec.PC >> 6
	if line != o.curFetchLine {
		o.curFetchLine = line
		o.lineReady = o.Hier.FetchI(o.now, rec.PC)
	}
	renameAt := o.now
	if o.lineReady > renameAt {
		o.bump(o.lineReady)
		renameAt = o.now
	}

	// --- Structural occupancy: ROB and LSQ entries must be free. ---
	if t := o.robRing[o.robHead]; t > renameAt {
		o.bump(t)
		renameAt = o.now
	}
	isLoad := rec.Class == isa.ClassLoad
	isStore := rec.Class == isa.ClassStore
	if isLoad {
		if t := o.loadRing[o.loadHead]; t > renameAt {
			o.bump(t)
			renameAt = o.now
		}
	}
	if isStore {
		if t := o.storeRing[o.storeHead]; t > renameAt {
			o.bump(t)
			renameAt = o.now
		}
	}

	// --- Schedule: dataflow readiness. ---
	ready := renameAt + 1 // rename-to-issue minimum
	if rec.Src1 != isa.NoDep {
		if t := o.regReady[rec.Src1]; t > ready {
			ready = t
		}
	}
	if rec.Src2 != isa.NoDep {
		if t := o.regReady[rec.Src2]; t > ready {
			ready = t
		}
	}

	var complete uint64
	var ecallIssue uint64
	serialize := false
	switch rec.Class {
	case isa.ClassAlu, isa.ClassJump, isa.ClassCall, isa.ClassRet, isa.ClassBranch:
		issue := o.issueRing.reserve(ready)
		complete = issue + 1
	case isa.ClassMul:
		issue := o.issueRing.reserve(o.mulDivRing.reserve(ready))
		complete = issue + o.Cfg.MulLat
	case isa.ClassDiv:
		issue := o.issueRing.reserve(o.mulDivRing.reserve(ready))
		complete = issue + o.Cfg.DivLat
	case isa.ClassLoad:
		issue := o.issueRing.reserve(o.loadPorts.reserve(ready))
		// Store-to-load dependency on the same granule.
		if t, ok := o.storeDone[rec.MemAddr>>3]; ok && t > issue {
			issue = t
		}
		complete = o.Hier.AccessD(issue, rec.MemAddr, false)
		o.Stats.Loads++
	case isa.ClassStore:
		issue := o.issueRing.reserve(o.storePorts.reserve(ready))
		complete = o.Hier.AccessD(issue, rec.MemAddr, true)
		o.storeDone[rec.MemAddr>>3] = complete
		if len(o.storeDone) > 512 {
			o.storeDone = map[uint64]uint64{} // bound the forwarding map
		}
		o.Stats.Stores++
	case isa.ClassEcall, isa.ClassFence:
		// Serializing: waits for every older instruction to commit.
		if o.lastCommit+1 > ready {
			ready = o.lastCommit + 1
		}
		issue := o.issueRing.reserve(ready)
		complete = issue + o.Cfg.EcallLat
		ecallIssue = issue
		serialize = true
	default:
		issue := o.issueRing.reserve(ready)
		complete = issue + 1
	}

	// --- Branch prediction / fetch redirects. ---
	switch rec.Class {
	case isa.ClassBranch, isa.ClassJump, isa.ClassCall, isa.ClassRet:
		o.Stats.Branches++
		if o.BP.Mispredicted(rec) {
			o.Stats.Mispredicts++
			if o.tr != nil {
				o.tr.EmitAt(trace.EvBranchMiss, o.core, complete, rec.PC, 0, 0)
			}
			o.bump(complete + o.Cfg.MispredictPenalty)
			o.curFetchLine = 0 // refetch after redirect
		}
	case isa.ClassEcall:
		// Trap entry redirects the front end.
		o.bump(complete + o.Cfg.MispredictPenalty)
		o.curFetchLine = 0
	}

	// --- Writeback: destination becomes ready. ---
	if rec.Dst != isa.NoDep {
		o.regReady[rec.Dst] = complete
	}

	// --- In-order commit with width limit. ---
	ct := complete
	if ct <= o.lastCommit {
		ct = o.lastCommit
	}
	if ct == o.commitCycle {
		o.commitsAtCycle++
		if o.commitsAtCycle >= o.Cfg.CommitWidth {
			ct++
			o.commitCycle = ct
			o.commitsAtCycle = 0
		}
	} else {
		o.commitCycle = ct
		o.commitsAtCycle = 1
	}
	o.lastCommit = ct
	if serialize {
		// Nothing younger may rename before a serializing op commits.
		o.bump(ct)
	}

	// Record occupancy releases.
	o.robRing[o.robHead] = ct
	o.robHead = (o.robHead + 1) % len(o.robRing)
	if isLoad {
		o.loadRing[o.loadHead] = ct
		o.loadHead = (o.loadHead + 1) % len(o.loadRing)
	}
	if isStore {
		o.storeRing[o.storeHead] = ct
		o.storeHead = (o.storeHead + 1) % len(o.storeRing)
	}

	o.Stats.Insts++
	o.Stats.MicroOps += uint64(rec.MicroOps)
	if o.tr != nil && rec.Class == isa.ClassEcall {
		// The privilege-switch window: issue-to-commit of the
		// serializing ecall.
		o.tr.EmitAt(trace.EvSyscallEnter, o.core, ecallIssue, rec.PC, 0, 0)
		o.tr.EmitAt(trace.EvSyscallExit, o.core, ct, rec.PC, 0, 0)
		o.ecallLat.Observe(ct - ecallIssue)
	}
	o.advanceFrontEnd()

	if rec.Flags&isa.FlagSend != 0 {
		o.coupler.post(rec.Seq, ct)
	}
	return ct, nil
}

// FastForward advances the core past one trace record without modeling
// the pipeline: the record "commits" one functional cycle after the
// previous one, no statistics move, and no structural or dataflow hazards
// are evaluated. Cross-core coupling stays exact — idle/recv records still
// wait for their peer send (returning ErrWait when it has not been
// replayed) and send records still post commit times — so interleaving
// decisions made while fast-forwarding remain deterministic and deadlock-
// free. With warm set, caches, TLBs and the branch predictor receive
// functional-warming updates (tags/LRU/counters, zero modeled latency) so
// the next detailed sample window starts with realistic state.
func (o *O3) FastForward(rec *isa.TraceRec, warm bool) (uint64, error) {
	if rec.Class == isa.ClassIdle {
		t, ok := o.coupler.ready(rec.Seq)
		if !ok {
			return 0, ErrWait
		}
		o.bump(t + o.Cfg.WakeLat)
		if o.lastCommit < o.now {
			o.lastCommit = o.now
		}
		return o.now, nil
	}
	if rec.Flags&isa.FlagRecv != 0 {
		t, ok := o.coupler.ready(rec.Seq)
		if !ok {
			return 0, ErrWait
		}
		o.bump(t + o.Cfg.WakeLat)
	}
	if warm {
		if line := rec.PC >> 6; line != o.curFetchLine {
			o.curFetchLine = line
			o.Hier.WarmFetchI(rec.PC)
		}
		switch rec.Class {
		case isa.ClassLoad:
			o.Hier.WarmAccessD(rec.MemAddr, false)
		case isa.ClassStore:
			o.Hier.WarmAccessD(rec.MemAddr, true)
		case isa.ClassBranch, isa.ClassJump, isa.ClassCall, isa.ClassRet:
			o.BP.Warm(rec)
		}
	}
	// One functional cycle per record keeps per-core clocks monotone and
	// cross-core coupling timestamps ordered without pipeline modeling.
	ct := o.lastCommit + 1
	if o.now > ct {
		ct = o.now
	}
	o.lastCommit = ct
	o.now = ct
	o.renameCount = 0
	if rec.Flags&isa.FlagSend != 0 {
		o.coupler.post(rec.Seq, ct)
	}
	return ct, nil
}

// BatchCounts tallies the architectural classes of a fast-forwarded
// record batch — the exact counts a sampled dump preserves while the
// pipeline model is bypassed.
type BatchCounts struct {
	Insts    uint64
	MicroOps uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
}

// FastForwardBatch fast-forwards a run of plain records in one tight
// loop, equivalent to calling FastForward on each but without the
// per-record dispatch the eval loop pays. It stops before the first
// record that carries flags or is an idle pseudo-record — those need the
// coupler and the caller's event plumbing — and returns the number of
// records consumed. Class counts accumulate into bc.
func (o *O3) FastForwardBatch(recs []isa.TraceRec, warm bool, bc *BatchCounts) int {
	n := 0
	for i := range recs {
		rec := &recs[i]
		if rec.Flags != 0 || rec.Class == isa.ClassIdle {
			break
		}
		bc.Insts++
		bc.MicroOps += uint64(rec.MicroOps)
		switch rec.Class {
		case isa.ClassLoad:
			bc.Loads++
			if warm {
				o.Hier.WarmAccessD(rec.MemAddr, false)
			}
		case isa.ClassStore:
			bc.Stores++
			if warm {
				o.Hier.WarmAccessD(rec.MemAddr, true)
			}
		case isa.ClassBranch, isa.ClassJump, isa.ClassCall, isa.ClassRet:
			bc.Branches++
			if warm {
				o.BP.Warm(rec)
			}
		}
		if warm {
			if line := rec.PC >> 6; line != o.curFetchLine {
				o.curFetchLine = line
				o.Hier.WarmFetchI(rec.PC)
			}
		}
		n++
	}
	if n > 0 {
		// Same clock arithmetic as n sequential FastForward calls: the
		// first record commits at max(lastCommit+1, now), each subsequent
		// one a cycle later.
		ct := o.lastCommit + 1
		if o.now > ct {
			ct = o.now
		}
		ct += uint64(n - 1)
		o.lastCommit = ct
		o.now = ct
		o.renameCount = 0
	}
	return n
}

// SkipAhead advances the functional clock by n committed record slots
// without touching any model state — the timing image of a purely
// functional sprint, mirroring the one-cycle-per-record advance of the
// record-replay fast-forward lanes so cross-lane commit timestamps stay
// comparable.
func (o *O3) SkipAhead(n uint64) {
	if n == 0 {
		return
	}
	ct := o.lastCommit + 1
	if o.now > ct {
		ct = o.now
	}
	ct += n - 1
	o.lastCommit = ct
	o.now = ct
	o.renameCount = 0
}

// ResetStats begins a new stats window at the current commit time and
// clears hierarchy and predictor counters.
func (o *O3) ResetStats() {
	o.Stats = WindowStats{StartCycle: o.lastCommit}
	o.Hier.ResetStats()
	o.BP.ResetStats()
}

// WindowCycles reports cycles elapsed in the current window.
func (o *O3) WindowCycles() uint64 { return o.lastCommit - o.Stats.StartCycle }

// ColdStart flushes all microarchitectural state (caches, TLBs, branch
// predictor), modeling a gem5 restore into the detailed CPU.
func (o *O3) ColdStart() {
	o.Hier.Flush()
	o.BP.Flush()
	o.storeDone = map[uint64]uint64{}
}
