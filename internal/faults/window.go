package faults

import "sort"

// Window is a half-open interval [Start, End) of virtual time that gates
// when a Rule is active. The zero Window is special-cased as "always
// active" so plans written before windows existed keep their meaning; a
// non-zero window with End <= Start is empty and never fires. Scenario
// phases (internal/scenario) stamp their window onto every rule they
// attach, which is how fault plans arm and disarm mid-run on the load
// engine's virtual clock.
type Window struct {
	Start uint64
	End   uint64
}

// IsZero reports whether w is the zero value, meaning "no window": the
// rule is active whenever the injector is armed.
func (w Window) IsZero() bool { return w.Start == 0 && w.End == 0 }

// Empty reports whether w is a non-zero window that can never contain a
// timestamp (End <= Start).
func (w Window) Empty() bool { return !w.IsZero() && w.End <= w.Start }

// Contains reports whether virtual time t falls inside the window. The
// interval is half-open: Contains(Start) is true, Contains(End) is false,
// so back-to-back windows never double-fire on a shared boundary tick.
func (w Window) Contains(t uint64) bool {
	if w.IsZero() {
		return true
	}
	return t >= w.Start && t < w.End
}

// Duration is the window's extent (0 for empty and zero windows).
func (w Window) Duration() uint64 {
	if w.End <= w.Start {
		return 0
	}
	return w.End - w.Start
}

// Overlaps reports whether two windows share at least one instant. A zero
// window overlaps every non-empty window (it is always active); empty
// windows overlap nothing.
func (w Window) Overlaps(o Window) bool {
	if w.Empty() || o.Empty() {
		return false
	}
	if w.IsZero() || o.IsZero() {
		return true
	}
	return w.Start < o.End && o.Start < w.End
}

// ActiveAt returns the indices of p's rules whose windows contain virtual
// time t, in plan order — the set the injector would consult at t.
func (p *Plan) ActiveAt(t uint64) []int {
	var idx []int
	for i := range p.Rules {
		if p.Rules[i].Window.Contains(t) {
			idx = append(idx, i)
		}
	}
	return idx
}

// WindowSpan returns the union extent of the plan's windowed rules — from
// the earliest Start to the latest End — and ok=false when no rule
// carries a (non-empty) window. Scenario reports bucket invocations into
// pre/during/post slices against this span.
func (p *Plan) WindowSpan() (Window, bool) {
	var span Window
	found := false
	for i := range p.Rules {
		w := p.Rules[i].Window
		if w.IsZero() || w.Empty() {
			continue
		}
		if !found || w.Start < span.Start {
			span.Start = w.Start
		}
		if !found || w.End > span.End {
			span.End = w.End
		}
		found = true
	}
	return span, found
}

// Boundaries returns the sorted, deduplicated window edges (Start and End
// of every non-empty window) — the instants where the active rule set
// changes.
func (p *Plan) Boundaries() []uint64 {
	var edges []uint64
	for i := range p.Rules {
		w := p.Rules[i].Window
		if w.IsZero() || w.Empty() {
			continue
		}
		edges = append(edges, w.Start, w.End)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	out := edges[:0]
	for _, e := range edges {
		if len(out) == 0 || out[len(out)-1] != e {
			out = append(out, e)
		}
	}
	return out
}

// AttemptFault is the DES-level outcome of evaluating a plan against one
// load-generator attempt: what the fault layer does to this request/reply
// round trip. The zero value means "attempt unaffected". It is produced
// by Injector.AttemptAt and consumed by loadgen's event loop.
type AttemptFault struct {
	// DropRequest loses the request before it reaches the platform: no
	// instance runs and the client notices only at its reply deadline.
	DropRequest bool
	// DropResponse loses the reply on the way back: the instance did the
	// work, but the client times out and may retry (duplicate work).
	DropResponse bool
	// ErrorReply fails the attempt fast with an injected error frame
	// instead of running the function (outage windows, error-reply rules).
	ErrorReply bool
	// BadReply corrupts the reply in flight so it fails the response
	// check; with a retry policy the client re-attempts.
	BadReply bool
	// DelayNS is extra reply delivery delay in virtual nanoseconds.
	DelayNS uint64
	// ServiceMult multiplies the on-instance service time (0 or 1 = none).
	ServiceMult uint64
}

// Faulted reports whether the attempt was affected at all.
func (f AttemptFault) Faulted() bool {
	return f.DropRequest || f.DropResponse || f.ErrorReply || f.BadReply ||
		f.DelayNS > 0 || f.ServiceMult > 1
}

// SetNow advances the injector's notion of virtual time, gating windowed
// rules in the per-message hooks (IPCFault, FlakyService). The DES-level
// AttemptAt sets it implicitly. Safe on a nil injector.
func (in *Injector) SetNow(now uint64) {
	if in == nil {
		return
	}
	in.now = now
}

// AttemptAt evaluates the plan's window-active rules against one
// load-generator attempt sent at virtual time now and returns the
// combined outcome. Rules are consulted in plan order with the same
// draw-count discipline as IPCFault: a rule whose window is closed draws
// nothing, so the fault schedule depends only on the seed and the
// attempts evaluated inside windows.
//
// At this level the rule kinds map onto the client round trip: Outage
// fails every attempt in its window unconditionally (the count-based
// After/For form belongs to the service layer); ErrorReply fails the
// attempt fast by probability; DropMsg on ClientReq loses the request,
// on ClientResp the reply; CorruptMsg and DelayMsg apply to the reply
// path (ClientResp or AnyChannel targets); LatencySpike multiplies the
// service time. IPC rules targeting concrete kernel channel ids are
// skipped — they belong to the in-machine hook.
func (in *Injector) AttemptAt(now uint64) AttemptFault {
	var f AttemptFault
	if in == nil || !in.armed {
		return f
	}
	in.now = now
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		if !r.Window.Contains(now) {
			continue
		}
		switch r.Kind {
		case Outage:
			in.Report.Injected++
			in.Report.Outages++
			f.ErrorReply = true
			return f
		case ErrorReply:
			if !in.rng.Chance(r.Prob) {
				continue
			}
			in.Report.Injected++
			in.Report.ErrorReplies++
			f.ErrorReply = true
			return f
		case DropMsg:
			switch r.Channel {
			case ClientReq:
				if !in.rng.Chance(r.Prob) {
					continue
				}
				in.Report.Injected++
				in.Report.Dropped++
				f.DropRequest = true
				return f
			case ClientResp:
				if f.DropResponse || !in.rng.Chance(r.Prob) {
					continue
				}
				in.Report.Injected++
				in.Report.Dropped++
				f.DropResponse = true
			}
		case CorruptMsg:
			if r.Channel != ClientResp && r.Channel != AnyChannel {
				continue
			}
			// A reply that was already lost cannot also be corrupted.
			if f.DropResponse || !in.rng.Chance(r.Prob) {
				continue
			}
			in.Report.Injected++
			in.Report.Corrupted++
			f.BadReply = true
		case DelayMsg:
			if r.Channel != ClientResp && r.Channel != AnyChannel {
				continue
			}
			if f.DropResponse || !in.rng.Chance(r.Prob) {
				continue
			}
			in.Report.Injected++
			in.Report.Delayed++
			f.DelayNS += r.Delay
		case LatencySpike:
			if !in.rng.Chance(r.Prob) {
				continue
			}
			in.Report.Injected++
			in.Report.Spikes++
			m := r.Mult
			if m <= 1 {
				m = 2
			}
			if f.ServiceMult <= 1 {
				f.ServiceMult = m
			} else {
				f.ServiceMult *= m
			}
		}
	}
	return f
}
