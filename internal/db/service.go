package db

import (
	"svbench/internal/rpc"
)

// Wire operations of the store service protocol (the CQL/wire-protocol
// stand-in the simulated client stubs speak).
const (
	OpGet  = 0
	OpPut  = 1
	OpScan = 2
)

// Status codes.
const (
	StatusOK       = 0
	StatusNotFound = 1
	StatusBadReq   = 2
)

// Service adapts a Store to the kernel's native-service interface: it
// decodes requests from simulated memory, executes them on the engine, and
// charges virtual cycles per the engine's cost model.
type Service struct {
	Store Store
	Cost  CostModel
	// Requests counts wire operations served.
	Requests uint64
}

// DefaultCost returns the per-engine service-time model. Cassandra's read
// path (JVM, SSTable probing) is substantially heavier than Memcached's;
// MongoDB sits between — matching the relative behaviour in §3.3.3 and
// Fig. 4.20.
func DefaultCost(engine string) CostModel {
	switch engine {
	case "cassandra":
		return CostModel{GetBase: 4200, PutBase: 9500, ScanBase: 9000,
			PerByte: 12, PerExtra: 3200, PerRow: 320}
	case "mongodb":
		return CostModel{GetBase: 2600, PutBase: 4200, ScanBase: 5200,
			PerByte: 8, PerExtra: 260, PerRow: 210}
	case "mariadb":
		return CostModel{GetBase: 3000, PutBase: 5200, ScanBase: 6200,
			PerByte: 9, PerExtra: 280, PerRow: 230}
	case "memcached":
		return CostModel{GetBase: 850, PutBase: 1050, ScanBase: 1400, PerByte: 2}
	default:
		return CostModel{GetBase: 4000, PutBase: 5000, ScanBase: 6000,
			PerByte: 8, PerExtra: 200, PerRow: 200}
	}
}

// NewService wraps an engine with its default cost model.
func NewService(s Store) *Service {
	return &Service{Store: s, Cost: DefaultCost(s.Name())}
}

// ServiceName identifies the engine behind this service ("cassandra",
// "memcached", ...), letting fault-injection rules target it by name.
func (s *Service) ServiceName() string { return s.Store.Name() }

func badRequest() ([]byte, uint64) {
	w := rpc.NewWriter()
	w.PutInt(StatusBadReq)
	return w.Bytes(), 500
}

// Handle implements kernel.Service.
func (s *Service) Handle(req []byte) ([]byte, uint64) {
	s.Requests++
	r := rpc.NewReader(req)
	op, err := r.Int()
	if err != nil {
		return badRequest()
	}
	table, err := r.String()
	if err != nil {
		return badRequest()
	}
	switch op {
	case OpGet:
		key, err := r.String()
		if err != nil {
			return badRequest()
		}
		extra := 0
		var val []byte
		var ok bool
		switch e := s.Store.(type) {
		case *Cassandra:
			val, ok, extra = e.GetProbed(table, key)
		case *Mongo:
			val, ok, extra = e.GetVisited(table, key)
		default:
			val, ok = s.Store.Get(table, key)
		}
		w := rpc.NewWriter()
		if !ok {
			w.PutInt(StatusNotFound)
			return w.Bytes(), s.Cost.get(0, extra)
		}
		w.PutInt(StatusOK)
		w.PutBytes(val)
		return w.Bytes(), s.Cost.get(len(val), extra)
	case OpPut:
		key, err := r.String()
		if err != nil {
			return badRequest()
		}
		val, err := r.Bytes()
		if err != nil {
			return badRequest()
		}
		s.Store.Put(table, key, val)
		w := rpc.NewWriter()
		w.PutInt(StatusOK)
		return w.Bytes(), s.Cost.put(len(val))
	case OpScan:
		prefix, err := r.String()
		if err != nil {
			return badRequest()
		}
		limit, err := r.Int()
		if err != nil {
			return badRequest()
		}
		pairs := s.Store.Scan(table, prefix, int(limit))
		w := rpc.NewWriter()
		w.PutInt(StatusOK)
		w.PutInt(uint64(len(pairs)))
		bytes := 0
		for _, p := range pairs {
			w.PutBytes(p.Val)
			bytes += len(p.Val)
		}
		return w.Bytes(), s.Cost.scan(bytes, len(pairs))
	}
	return badRequest()
}
