package sweep

import (
	"reflect"
	"strings"
	"testing"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
)

// testTasks builds a small matrix: the first n standalone specs on both
// architectures, trimmed to the minimum request count.
func testTasks(t testing.TB, n int) []Task {
	t.Helper()
	specs := harness.StandaloneSpecs()
	if len(specs) < n {
		t.Fatalf("want %d standalone specs, have %d", n, len(specs))
	}
	var tasks []Task
	for _, arch := range []isa.Arch{isa.RV64, isa.CISC64} {
		for _, s := range specs[:n] {
			s.Requests = 3
			tasks = append(tasks, Task{Cfg: gemsys.DefaultConfig(arch), Spec: s})
		}
	}
	return tasks
}

func TestValidateJobs(t *testing.T) {
	for _, j := range []int{1, 2, 64} {
		if err := ValidateJobs(j); err != nil {
			t.Errorf("ValidateJobs(%d) = %v, want nil", j, err)
		}
	}
	for _, j := range []int{0, -1, -8} {
		if err := ValidateJobs(j); err == nil {
			t.Errorf("ValidateJobs(%d) = nil, want error", j)
		}
	}
}

// TestRunDeterministic is the core contract: outcomes are in task order
// and identical across worker counts and memoization settings.
func TestRunDeterministic(t *testing.T) {
	tasks := testTasks(t, 3)
	base := Run(tasks, Options{Jobs: 1, DisableMemo: true})
	if len(base) != len(tasks) {
		t.Fatalf("got %d outcomes, want %d", len(base), len(tasks))
	}
	for i, o := range base {
		if o.Err != nil {
			t.Fatalf("task %d (%s/%s): %v", i, o.Task.Spec.Name, o.Task.Cfg.Arch, o.Err)
		}
		if o.Task.Spec.Name != tasks[i].Spec.Name || o.Task.Cfg.Arch != tasks[i].Cfg.Arch {
			t.Fatalf("outcome %d is for %s/%s, want %s/%s",
				i, o.Task.Spec.Name, o.Task.Cfg.Arch, tasks[i].Spec.Name, tasks[i].Cfg.Arch)
		}
	}
	for _, opt := range []Options{
		{Jobs: 1},
		{Jobs: 4},
		{Jobs: 4, DisableMemo: true},
	} {
		got := Run(tasks, opt)
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("jobs=%d memo=%v task %d: %v", opt.Jobs, !opt.DisableMemo, i, got[i].Err)
			}
			if !reflect.DeepEqual(got[i].Result, base[i].Result) {
				t.Errorf("jobs=%d memo=%v: result %d (%s/%s) differs from serial unmemoized run",
					opt.Jobs, !opt.DisableMemo, i, got[i].Task.Spec.Name, got[i].Task.Cfg.Arch)
			}
		}
	}
}

// TestRunMemoizes checks that repeating a task in one sweep serves the
// repeat from the cache and still yields an identical result.
func TestRunMemoizes(t *testing.T) {
	tasks := testTasks(t, 1)[:1]
	tasks = append(tasks, tasks[0], tasks[0])
	cache := harness.NewBootCache()
	out := Run(tasks, Options{Jobs: 2, Cache: cache})
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("task %d: %v", i, o.Err)
		}
		if !reflect.DeepEqual(o.Result, out[0].Result) {
			t.Errorf("task %d result differs from task 0", i)
		}
	}
	hits, misses, rejected := cache.Stats()
	if misses != 1 || hits != 2 || rejected != 0 {
		t.Errorf("cache stats hits=%d misses=%d rejected=%d, want 2/1/0", hits, misses, rejected)
	}
}

func TestRunReportsFailuresInOrder(t *testing.T) {
	tasks := testTasks(t, 2)
	bad := tasks[1]
	bad.Spec.Requests = 1 // invalid: below the cold/warm minimum
	tasks[1] = bad
	out := Run(tasks, Options{Jobs: 2})
	if out[1].Err == nil {
		t.Fatalf("task 1 should fail validation")
	}
	if !strings.Contains(out[1].Err.Error(), "Requests must be >= 2") {
		t.Errorf("unexpected error: %v", out[1].Err)
	}
	for i, o := range out {
		if i != 1 && o.Err != nil {
			t.Errorf("task %d: %v", i, o.Err)
		}
	}
}

func benchSweep(b *testing.B, jobs int, memo bool) {
	tasks := testTasks(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Run(tasks, Options{Jobs: jobs, DisableMemo: !memo})
		for _, o := range out {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)       { benchSweep(b, 1, true) }
func BenchmarkSweepSerialNoMemo(b *testing.B) { benchSweep(b, 1, false) }
func BenchmarkSweepParallel(b *testing.B)     { benchSweep(b, DefaultJobs(), true) }

// TestEach covers the generic per-index pool: every index runs exactly
// once for any worker count, zero selects the default, and invalid
// counts panic like Run.
func TestEach(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 16} {
		got := make([]int, 20)
		Each(len(got), jobs, func(i int) { got[i]++ })
		for i, n := range got {
			if n != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, n)
			}
		}
	}
	Each(0, 4, func(int) { t.Fatal("fn called for n=0") })
	defer func() {
		if recover() == nil {
			t.Fatal("Each accepted jobs=-1")
		}
	}()
	Each(1, -1, func(int) {})
}
