package riscv

import (
	"testing"

	"svbench/internal/ir/irtest"
	"svbench/internal/isa"
)

// chainLoopCore builds a two-block infinite loop designed to patch both
// link slots immediately:
//
//	A @ 0x1000: ADDI x5,x5,1 ; JAL -> B
//	B @ 0x2000: ADDI x6,x6,2 ; JAL -> A
func chainLoopCore() *Core {
	mem := isa.NewMem(1 << 16)
	emit := func(pc uint64, in Inst) {
		mem.Store(pc, 4, uint64(in.Encode()))
	}
	emit(0x1000, Inst{Kind: KindADDI, Rd: 5, Rs1: 5, Imm: 1})
	emit(0x1004, Inst{Kind: KindJAL, Rd: RegZero, Imm: 0x2000 - 0x1004})
	emit(0x2000, Inst{Kind: KindADDI, Rd: 6, Rs1: 6, Imm: 2})
	emit(0x2004, Inst{Kind: KindJAL, Rd: RegZero, Imm: 0x1000 - 0x2004})
	core := NewCore(mem, nil)
	core.SetPC(0x1000)
	return core
}

// TestChainInvalidationContract pins the self-modifying-code contract of
// the superblock chain: a plain store to already-translated text is NOT
// observed (translated blocks and their links keep executing the old
// code), while InvalidateBlocks severs every link, counts each severed
// slot as a chain break, and forces retranslation so the new text runs.
func TestChainInvalidationContract(t *testing.T) {
	cases := []struct {
		name       string
		invalidate bool
	}{
		{"invalidate-executes-new-text", true},
		{"plain-store-keeps-old-translation", false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			core := chainLoopCore()
			if _, _, err := core.StepN(400, nil); err != nil {
				t.Fatal(err)
			}
			d := core.Dec
			st := d.ChainStats()
			// 400 steps over a 2-block loop: 3 map misses (the initial
			// entry plus one first-transition per link), the rest
			// link-followed.
			if st.Blocks != 2 || st.Misses != 3 {
				t.Fatalf("warmup stats = %+v, want Blocks=2 Misses=3", st)
			}
			if st.Hits < 190 {
				t.Fatalf("only %d chain hits after 400 steps", st.Hits)
			}
			a, b := d.blocks[0x1000], d.blocks[0x2000]
			if a == nil || b == nil || a.link0 != b || b.link0 != a {
				t.Fatalf("loop blocks not mutually linked: a=%p b=%p", a, b)
			}
			// Self-modify B's body: x6 += 2 becomes x7 += 3.
			core.Mem.Store(0x2000, 4, uint64(Inst{Kind: KindADDI, Rd: 7, Rs1: 7, Imm: 3}.Encode()))
			if tc.invalidate {
				d.InvalidateBlocks()
				if got := d.ChainStats().Breaks; got != st.Breaks+2 {
					t.Fatalf("Breaks = %d, want %d (two severed links)", got, st.Breaks+2)
				}
			}
			x6, x7 := core.Regs[6], core.Regs[7]
			if _, _, err := core.StepN(400, nil); err != nil {
				t.Fatal(err)
			}
			ranNew := core.Regs[7] > x7
			ranOld := core.Regs[6] > x6
			if tc.invalidate {
				if !ranNew || ranOld {
					t.Fatalf("after invalidation: new code ran=%v, old code ran=%v (want true,false)", ranNew, ranOld)
				}
				// The chain must re-form on the retranslated blocks.
				if st2 := d.ChainStats(); st2.Hits <= st.Hits {
					t.Fatalf("chain did not re-form: hits %d -> %d", st.Hits, st2.Hits)
				}
			} else if ranNew || !ranOld {
				t.Fatalf("without invalidation: new code ran=%v, old code ran=%v (want false,true)", ranNew, ranOld)
			}
		})
	}
}

// TestResetChains checks the checkpoint-restore primitive: links and
// telemetry are dropped while translated blocks survive, and the counters
// start a fresh distinct-block generation.
func TestResetChains(t *testing.T) {
	core := chainLoopCore()
	if _, _, err := core.StepN(300, nil); err != nil {
		t.Fatal(err)
	}
	d := core.Dec
	st := d.ChainStats()
	if st.Blocks == 0 || st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("no chain activity after 300 steps: %+v", st)
	}
	nBlocks := len(d.blocks)
	if nBlocks == 0 {
		t.Fatal("no translated blocks")
	}
	d.ResetChains()
	if st2 := d.ChainStats(); st2 != (isa.ChainStats{}) {
		t.Fatalf("ResetChains left telemetry behind: %+v", st2)
	}
	if len(d.blocks) != nBlocks {
		t.Fatalf("ResetChains dropped blocks: %d -> %d", nBlocks, len(d.blocks))
	}
	for pc, b := range d.blocks {
		if b.link0 != nil || b.link1 != nil || b.link0pc != 0 || b.link1pc != 0 {
			t.Fatalf("block %#x kept a link after ResetChains", pc)
		}
	}
	// Execution continues on the link-less (but still warm) cache: the
	// new generation re-counts entered blocks and re-patches links.
	if _, _, err := core.StepN(300, nil); err != nil {
		t.Fatal(err)
	}
	if st3 := d.ChainStats(); st3.Blocks != 2 || st3.Hits == 0 {
		t.Fatalf("chain did not restart after ResetChains: %+v", st3)
	}
}

// TestResetChainsMidRun calls ResetChains in the middle of a real corpus
// program and checks execution still completes with the right answer.
func TestResetChainsMidRun(t *testing.T) {
	m, cases := irtest.Corpus()
	prog, err := Compile(m, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	c := cases[0]
	core := corpusCore(prog, c.Fn, c.Args, 0)()
	var ferr error
	for rounds := 0; ferr == nil; rounds++ {
		_, _, ferr = core.StepN(40, nil)
		if rounds%3 == 2 {
			core.Dec.ResetChains()
		}
	}
	if ferr != ErrHalt {
		t.Fatal(ferr)
	}
	if got := int64(core.Regs[RegA0]); got != c.Want {
		t.Fatalf("%s(%v) = %d, want %d", c.Fn, c.Args, got, c.Want)
	}
}

// TestStepNLockstepLoops drives a backward-branching nested loop through
// the reference interpreter and both StepN lanes. Small batch sizes cut
// quanta inside the loop body, so link patching, link following and
// budget-truncated (unchained) exits all interleave.
func TestStepNLockstepLoops(t *testing.T) {
	mk := func() *Core {
		mem := isa.NewMem(1 << 16)
		emit := func(pc uint64, in Inst) {
			mem.Store(pc, 4, uint64(in.Encode()))
		}
		// x7 = sum over 6 outer iterations of (5+4+3+2+1) = 90.
		emit(0x1000, Inst{Kind: KindADDI, Rd: 5, Rs1: RegZero, Imm: 6})
		emit(0x1004, Inst{Kind: KindADDI, Rd: 6, Rs1: RegZero, Imm: 5}) // outer:
		emit(0x1008, Inst{Kind: KindADD, Rd: 7, Rs1: 7, Rs2: 6})       // inner:
		emit(0x100C, Inst{Kind: KindADDI, Rd: 6, Rs1: 6, Imm: -1})
		emit(0x1010, Inst{Kind: KindBNE, Rs1: 6, Rs2: RegZero, Imm: 0x1008 - 0x1010})
		emit(0x1014, Inst{Kind: KindADDI, Rd: 5, Rs1: 5, Imm: -1})
		emit(0x1018, Inst{Kind: KindBNE, Rs1: 5, Rs2: RegZero, Imm: 0x1004 - 0x1018})
		emit(0x101C, Inst{Kind: KindADDI, Rd: RegA7, Rs1: RegZero, Imm: 255})
		emit(0x1020, Inst{Kind: KindECALL})
		core := NewCore(mem, nil)
		core.Hook = func(c isa.Core) isa.EcallResult { return isa.EcallHalt }
		core.SetPC(0x1000)
		core.DebugRing = make([]uint64, 4)
		return core
	}
	for _, bs := range [][]int{{1}, {2}, {3}, {5, 1}, {7}, {64}, {1000}} {
		ref := lockstep(t, mk, bs, 10_000)
		if got := ref.Regs[7]; got != 90 {
			t.Fatalf("x7 = %d, want 90", got)
		}
	}
	// The chained fast path must actually be chaining here: the whole
	// nested loop re-enters two blocks thousands of times.
	core := mk()
	var err error
	for err == nil {
		_, _, err = core.StepN(512, nil)
	}
	if err != ErrHalt {
		t.Fatal(err)
	}
	if st := core.Dec.ChainStats(); st.Hits == 0 {
		t.Fatalf("no chain hits on a loop workload: %+v", st)
	}
}

// TestChainLinksAcrossQuantumBoundary: a block truncated by the step
// budget must not patch or follow links (the resumed entry goes through
// the map), and resuming mid-block must stay bit-exact with the
// reference. Batch size 3 cuts every iteration of a 4-instruction loop.
func TestChainLinksAcrossQuantumBoundary(t *testing.T) {
	mk := func() *Core {
		mem := isa.NewMem(1 << 16)
		emit := func(pc uint64, in Inst) {
			mem.Store(pc, 4, uint64(in.Encode()))
		}
		emit(0x1000, Inst{Kind: KindADDI, Rd: 5, Rs1: RegZero, Imm: 100})
		emit(0x1004, Inst{Kind: KindADDI, Rd: 6, Rs1: 6, Imm: 7}) // loop:
		emit(0x1008, Inst{Kind: KindXOR, Rd: 7, Rs1: 7, Rs2: 6})
		emit(0x100C, Inst{Kind: KindADDI, Rd: 5, Rs1: 5, Imm: -1})
		emit(0x1010, Inst{Kind: KindBNE, Rs1: 5, Rs2: RegZero, Imm: 0x1004 - 0x1010})
		emit(0x1014, Inst{Kind: KindADDI, Rd: RegA7, Rs1: RegZero, Imm: 255})
		emit(0x1018, Inst{Kind: KindECALL})
		core := NewCore(mem, nil)
		core.Hook = func(c isa.Core) isa.EcallResult { return isa.EcallHalt }
		core.SetPC(0x1000)
		return core
	}
	lockstep(t, mk, []int{3}, 10_000)
}

// TestChainStatsMeanLen sanity-checks the derived metric.
func TestChainStatsMeanLen(t *testing.T) {
	if got := (isa.ChainStats{}).MeanChainLen(); got != 0 {
		t.Fatalf("empty MeanChainLen = %v, want 0", got)
	}
	st := isa.ChainStats{Hits: 9, Misses: 3}
	if got := st.MeanChainLen(); got != 4 {
		t.Fatalf("MeanChainLen = %v, want 4 ((9+3)/3)", got)
	}
	core := chainLoopCore()
	if _, _, err := core.StepN(1000, nil); err != nil {
		t.Fatal(err)
	}
	if got := core.Dec.ChainStats().MeanChainLen(); got < 100 {
		t.Fatalf("tight loop mean chain length = %v, want long chains", got)
	}
}
