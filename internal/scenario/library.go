package scenario

import (
	"fmt"
	"sort"

	"svbench/internal/faults"
	"svbench/internal/loadgen"
)

// ms converts milliseconds to virtual nanoseconds for readable specs.
const ms = 1_000_000

// win is a readable window literal in virtual milliseconds.
func win(startMS, endMS uint64) faults.Window {
	return faults.Window{Start: startMS * ms, End: endMS * ms}
}

// Catalog returns the library of named scenarios, sorted by name. The
// specs are literals — every run of the same (scenario, spec, seed) is
// byte-identical — and each targets one canonical failure narrative the
// serverless literature benchmarks: clean baseline, transient blip,
// outage with recovery, latency spikes, a retry storm, and keep-alive
// churn under degraded traffic.
//
// The SLO p99 bounds are calibrated against fibonacci-go (the default
// function under load): its cold-start latency dominates small-sample
// p99s, so bounds sit above the warmup cold start but below the
// during-window degradation each scenario is meant to flag.
func Catalog() []Scenario {
	list := []Scenario{
		{
			Name:        "baseline",
			Description: "fault-free control: the load shape every other scenario degrades",
			RPS:         800,
			Duration:    50 * ms,
			KeepAlive:   10 * ms,
			Retry:       faults.DefaultRetry(),
			SLO:         SLO{P99NS: 10 * ms, ErrorRate: 0},
		},
		{
			Name:        "transient-blip",
			Description: "a 4 ms total outage a patient retry policy absorbs without failures",
			RPS:         800,
			Duration:    50 * ms,
			KeepAlive:   10 * ms,
			Retry:       &faults.Retry{MaxAttempts: 4, Backoff: 2 * ms, Deadline: 4 * ms},
			Phases: []Phase{
				{Name: "blip", Window: win(20, 24), Rules: []faults.Rule{
					{Kind: faults.Outage},
				}},
			},
			SLO:              SLO{P99NS: 10 * ms, ErrorRate: 0.05},
			RecoveryDeadline: 15 * ms,
		},
		{
			Name:        "outage-and-recover",
			Description: "a 12 ms hard outage: attempts fail until the window closes, then the backlog drains",
			RPS:         800,
			Duration:    60 * ms,
			KeepAlive:   10 * ms,
			Retry:       &faults.Retry{MaxAttempts: 6, Backoff: 2 * ms, Deadline: 8 * ms},
			Phases: []Phase{
				{Name: "outage", Window: win(15, 27), Rules: []faults.Rule{
					{Kind: faults.Outage},
				}},
			},
			SLO:              SLO{P99NS: 8 * ms, ErrorRate: 0.10},
			RecoveryDeadline: 25 * ms,
		},
		{
			Name:        "latency-spike",
			Description: "a 15 ms window of 8x service-time spikes plus delayed replies — degraded, not down",
			RPS:         800,
			Duration:    55 * ms,
			KeepAlive:   10 * ms,
			Retry:       faults.DefaultRetry(),
			Phases: []Phase{
				{Name: "spike", Window: win(18, 33), Rules: []faults.Rule{
					{Kind: faults.LatencySpike, Prob: 0.8, Mult: 8},
					{Kind: faults.DelayMsg, Channel: faults.ClientResp, Prob: 0.5, Delay: 2 * ms},
				}},
			},
			SLO:              SLO{P99NS: 1 * ms, ErrorRate: 0},
			RecoveryDeadline: 20 * ms,
		},
		{
			Name:        "retry-storm",
			Description: "an 85% reply-loss window under an aggressive retry policy: duplicate work floods the pool",
			RPS:         900,
			Duration:    50 * ms,
			KeepAlive:   10 * ms,
			Retry:       &faults.Retry{MaxAttempts: 5, Backoff: 1 * ms, Deadline: 5 * ms},
			Phases: []Phase{
				{Name: "storm", Window: win(15, 30), Rules: []faults.Rule{
					{Kind: faults.DropMsg, Channel: faults.ClientResp, Prob: 0.85},
				}},
			},
			SLO:              SLO{P99NS: 10 * ms, ErrorRate: 0.15},
			RecoveryDeadline: 25 * ms,
		},
		{
			Name:        "degradation-under-churn",
			Description: "bursty arrivals with zero keep-alive plus an error-reply window: every miss pays a cold start",
			RPS:         800,
			Duration:    55 * ms,
			Arrival:     loadgen.Bursty,
			Burst:       4,
			KeepAlive:   0,
			Retry:       faults.DefaultRetry(),
			Phases: []Phase{
				{Name: "degrade", Window: win(18, 30), Rules: []faults.Rule{
					{Kind: faults.ErrorReply, Prob: 0.5},
				}},
			},
			SLO:              SLO{P99NS: 10 * ms, ErrorRate: 0.10},
			RecoveryDeadline: 25 * ms,
		},
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// Names returns the catalog's scenario names, sorted.
func Names() []string {
	var names []string
	for _, s := range Catalog() {
		names = append(names, s.Name)
	}
	return names
}

// ByName looks a scenario up in the catalog.
func ByName(name string) (Scenario, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
}
