package cpu

import (
	"testing"

	"svbench/internal/isa"
	"svbench/internal/mem"
)

func newTestO3() *O3 {
	dram := mem.NewDRAM(mem.DRAMConfig{Latency: 200, BusCycle: 16})
	h := mem.NewHierarchy(mem.DefaultHierConfig(), dram)
	return NewO3(DefaultO3Config(), h, NewCoupler())
}

func alu(pc uint64, dst, src1, src2 uint8) isa.TraceRec {
	return isa.TraceRec{PC: pc, Size: 4, Class: isa.ClassAlu,
		Src1: src1, Src2: src2, Dst: dst, MicroOps: 1}
}

func retireAll(t *testing.T, o *O3, recs []isa.TraceRec) uint64 {
	t.Helper()
	var last uint64
	for i := range recs {
		ct, err := o.Retire(&recs[i])
		if err != nil {
			t.Fatalf("retire %d: %v", i, err)
		}
		last = ct
	}
	return last
}

func TestO3IndependentALUOpsSuperscalar(t *testing.T) {
	o := newTestO3()
	// 400 independent single-cycle ops on one cache line stream: IPC must
	// approach the rename width (4), certainly above 2 once warm.
	var recs []isa.TraceRec
	for i := 0; i < 400; i++ {
		recs = append(recs, alu(0x1000+uint64(4*i), uint8(i%8), isa.NoDep, isa.NoDep))
	}
	retireAll(t, o, recs) // warm the instruction cache
	o.ResetStats()
	retireAll(t, o, recs)
	cycles := o.WindowCycles()
	ipc := float64(o.Stats.Insts) / float64(cycles)
	if ipc < 2.0 {
		t.Fatalf("independent ALU IPC = %.2f (cycles=%d), want >= 2", ipc, cycles)
	}
	if ipc > float64(o.Cfg.CommitWidth)+0.01 {
		t.Fatalf("IPC %.2f exceeds commit width", ipc)
	}
}

func TestO3DependentChainIsSerial(t *testing.T) {
	o := newTestO3()
	// A chain r1 = r1 + r1 executes one per cycle at best.
	var recs []isa.TraceRec
	for i := 0; i < 300; i++ {
		recs = append(recs, alu(0x1000+uint64(4*i), 1, 1, 1))
	}
	o.ResetStats()
	retireAll(t, o, recs)
	ipc := float64(o.Stats.Insts) / float64(o.WindowCycles())
	if ipc > 1.1 {
		t.Fatalf("dependent chain IPC = %.2f, want <= ~1", ipc)
	}
}

func TestO3DivSlowerThanAlu(t *testing.T) {
	mk := func(class isa.Class) uint64 {
		o := newTestO3()
		var recs []isa.TraceRec
		for i := 0; i < 200; i++ {
			r := alu(0x1000+uint64(4*i), 1, 1, isa.NoDep)
			r.Class = class
			recs = append(recs, r)
		}
		retireAll(t, o, recs) // warm the instruction cache
		o.ResetStats()
		retireAll(t, o, recs)
		return o.WindowCycles()
	}
	aluC, divC := mk(isa.ClassAlu), mk(isa.ClassDiv)
	if divC < 10*aluC {
		t.Fatalf("div chain (%d cycles) should be >=10x alu chain (%d)", divC, aluC)
	}
}

func TestO3ColdVsWarmCacheEffect(t *testing.T) {
	o := newTestO3()
	// A pointer-chase over 512 distinct lines: cold pass pays DRAM, a
	// second pass hits L1/L2.
	var pass []isa.TraceRec
	for i := 0; i < 512; i++ {
		r := alu(0x1000+uint64(4*(i%64)), 1, 1, isa.NoDep)
		r.Class = isa.ClassLoad
		r.MemAddr = 0x100000 + uint64(i)*64
		r.MemSize = 8
		pass = append(pass, r)
	}
	o.ColdStart()
	o.ResetStats()
	retireAll(t, o, pass)
	cold := o.WindowCycles()
	coldMisses := o.Hier.L1D.Stats.Misses

	o.ResetStats()
	retireAll(t, o, pass)
	warm := o.WindowCycles()
	warmMisses := o.Hier.L1D.Stats.Misses

	if coldMisses < 500 {
		t.Fatalf("cold pass misses = %d, want ~512", coldMisses)
	}
	if warmMisses > 20 {
		t.Fatalf("warm pass misses = %d, want ~0", warmMisses)
	}
	if cold < 2*warm {
		t.Fatalf("cold %d cycles vs warm %d: expected >=2x gap", cold, warm)
	}
}

func TestO3MispredictsHurt(t *testing.T) {
	run := func(alternate bool) uint64 {
		o := newTestO3()
		var recs []isa.TraceRec
		for i := 0; i < 2000; i++ {
			taken := true
			if alternate {
				// A pattern the 2-bit counter cannot learn per-branch
				// because each branch address is visited with an
				// alternating outcome.
				taken = i%2 == 0
			}
			r := isa.TraceRec{PC: 0x1000, Size: 4, Class: isa.ClassBranch,
				Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
				Taken: taken, Target: 0x1000, MicroOps: 1}
			recs = append(recs, r)
		}
		o.ResetStats()
		retireAll(t, o, recs)
		if alternate && o.Stats.Mispredicts < 500 {
			t.Fatalf("alternating pattern mispredicts = %d, want many", o.Stats.Mispredicts)
		}
		if !alternate && o.Stats.Mispredicts > 50 {
			t.Fatalf("steady pattern mispredicts = %d, want few", o.Stats.Mispredicts)
		}
		return o.WindowCycles()
	}
	steady, alternating := run(false), run(true)
	if alternating < 2*steady {
		t.Fatalf("alternating (%d cycles) should be much slower than steady (%d)", alternating, steady)
	}
}

func TestO3SendRecvCoupling(t *testing.T) {
	dram := mem.NewDRAM(mem.DRAMConfig{})
	cpl := NewCoupler()
	h0 := mem.NewHierarchy(mem.DefaultHierConfig(), dram)
	h1 := mem.NewHierarchy(mem.DefaultHierConfig(), dram)
	sender := NewO3(DefaultO3Config(), h0, cpl)
	receiver := NewO3(DefaultO3Config(), h1, cpl)

	recv := isa.TraceRec{PC: 0x2000, Size: 4, Class: isa.ClassEcall,
		Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
		Flags: isa.FlagRecv, Seq: 7, MicroOps: 1}
	if _, err := receiver.Retire(&recv); err != ErrWait {
		t.Fatalf("recv before send: err=%v, want ErrWait", err)
	}

	// Sender executes filler then the send.
	var filler []isa.TraceRec
	for i := 0; i < 500; i++ {
		filler = append(filler, alu(0x1000+uint64(4*i), 1, 1, isa.NoDep))
	}
	retireAll(t, sender, filler)
	send := isa.TraceRec{PC: 0x3000, Size: 4, Class: isa.ClassEcall,
		Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
		Flags: isa.FlagSend, Seq: 7, MicroOps: 1}
	sendCommit, err := sender.Retire(&send)
	if err != nil {
		t.Fatal(err)
	}

	ct, err := receiver.Retire(&recv)
	if err != nil {
		t.Fatal(err)
	}
	if ct < sendCommit+receiver.Cfg.WakeLat {
		t.Fatalf("recv committed at %d, before send commit %d + wake latency", ct, sendCommit)
	}
}

func TestO3IdleRecord(t *testing.T) {
	cpl := NewCoupler()
	dram := mem.NewDRAM(mem.DRAMConfig{})
	o := NewO3(DefaultO3Config(), mem.NewHierarchy(mem.DefaultHierConfig(), dram), cpl)
	idle := isa.TraceRec{Class: isa.ClassIdle, Seq: 3}
	if _, err := o.Retire(&idle); err != ErrWait {
		t.Fatalf("idle before wake: %v", err)
	}
	cpl.post(3, 1000)
	ct, err := o.Retire(&idle)
	if err != nil {
		t.Fatal(err)
	}
	if ct < 1000 {
		t.Fatalf("idle resumed at %d, want >= 1000", ct)
	}
}

func TestAtomicAndKVM(t *testing.T) {
	var a Atomic
	a.Retire(100)
	a.Retire(50)
	if a.Cycles() != 150 {
		t.Fatalf("atomic cycles = %d", a.Cycles())
	}
	k := &KVM{Unstable: true}
	ok := 0
	for i := 0; i < 9; i++ {
		if k.TryCheckpoint() {
			ok++
		}
	}
	if ok != 3 {
		t.Fatalf("unstable KVM succeeded %d/9 times, want 3", ok)
	}
	stable := &KVM{}
	if !stable.TryCheckpoint() {
		t.Fatal("stable KVM must checkpoint")
	}
}

func TestBPredRAS(t *testing.T) {
	b := NewBPred(DefaultBPredConfig())
	call := isa.TraceRec{PC: 0x1000, Size: 4, Class: isa.ClassCall, Taken: true, Target: 0x2000}
	ret := isa.TraceRec{PC: 0x2004, Size: 4, Class: isa.ClassRet, Taken: true, Target: 0x1004}
	b.Mispredicted(&call) // first sight: BTB cold
	if b.Mispredicted(&ret) {
		t.Fatal("matched return must be predicted by the RAS")
	}
	bad := isa.TraceRec{PC: 0x3000, Size: 4, Class: isa.ClassRet, Taken: true, Target: 0x9999}
	if !b.Mispredicted(&bad) {
		t.Fatal("underflowed RAS must mispredict")
	}
}
