// Package loadgen is the open-loop invocation load engine: it replays a
// seeded arrival process (Poisson or bursty, xorshift-driven like
// internal/faults) against a pool of function instances cloned from
// memoized post-boot checkpoints (harness.BootCache), under a keep-alive
// idle-reclaim policy that produces a realistic cold/warm invocation mix.
//
// Each instance is a real simulated machine: the harness boots it once
// per fingerprint, the engine restores private clones of the post-boot
// checkpoint, kills the simulated client, and drives the surviving
// function server host-side (kernel.Inject / kernel.TakeMessage +
// gemsys.RunUntilIdle). Service times are measured on the machine's
// virtual clock, so the cold/warm difference is the runtime's real lazy
// initialization, not a modeled constant; only the cold-start boot
// penalty (the setup phase the restore skipped) is charged analytically.
//
// Determinism is the contract, mirroring internal/sweep: one run is a
// sequential discrete-event simulation whose every decision is a pure
// function of (config, seed), so identical configs produce byte-identical
// latency tables, stats-registry text and trace JSON for any worker
// count; parallelism (RunMany) exists across sweep points, never inside a
// run. See docs/loadgen.md.
package loadgen

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/rpc"
	"svbench/internal/sweep"
	"svbench/internal/trace"
)

// Config describes one load run.
type Config struct {
	// Cfg is the simulated machine configuration every instance boots
	// with (gemsys.DefaultConfig of an ISA).
	Cfg gemsys.Config
	// Spec is the function under load (harness catalog entry).
	Spec harness.Spec
	// RPS is the mean arrival rate in invocations per virtual second.
	RPS float64
	// Duration is the arrival window in virtual nanoseconds; completions
	// drain past it (open loop).
	Duration uint64
	// Seed drives the arrival process PRNG.
	Seed uint64
	// Arrival selects the arrival process (Poisson default).
	Arrival Process
	// Burst is the Bursty process's batch size (0 = DefaultBurst).
	Burst int
	// KeepAlive is the idle-reclaim threshold in virtual nanoseconds: an
	// instance idle for this long is torn down, so the next arrival it
	// would have served pays a cold start. Zero reclaims immediately on
	// idling; a value beyond the run keeps every instance warm.
	KeepAlive uint64
	// MaxInstances caps the pool (0 = DefaultMaxInstances); arrivals
	// beyond the cap queue FIFO.
	MaxInstances int
	// Cache, when non-nil, memoizes post-boot checkpoints across runs
	// (RunMany shares one cache over all points of a sweep). Nil boots
	// one master per run.
	Cache *harness.BootCache
}

// DefaultMaxInstances is the pool cap when Config.MaxInstances is zero.
const DefaultMaxInstances = 4

// invokeBudget bounds one host-driven invocation's functional execution.
const invokeBudget = 200_000_000

// instance is one warm function machine of the pool.
type instance struct {
	id     int
	b      *harness.Boot
	reqCh  int
	respCh int
	// penalty is the boot time (virtual ns of the skipped setup phase)
	// charged when this instance was cold-started.
	penalty   uint64
	idleSince uint64
}

// busyRec tracks one in-flight invocation on its instance.
type busyRec struct {
	inst *instance
	inv  int
	done uint64
}

type engine struct {
	cfg     Config
	reqMsg  []byte
	arrives []uint64
	invs    []Invocation

	// masterCk is the shared post-boot checkpoint instances restore from;
	// nil when the spec's boot is not memoizable (host-side service state
	// — each cold start then simulates its own setup).
	masterCk   *gemsys.Checkpoint
	masterNS   uint64
	memoizable bool

	idle  []*instance
	busy  []busyRec
	free  []*instance // reclaimed machines awaiting re-restore
	queue []int

	live       int
	nextInstID int

	// Counters registered into the stats registry.
	coldStarts    uint64
	warmStarts    uint64
	churnColds    uint64
	reclaims      uint64
	peak          uint64
	maxQueue      uint64
	checkFailures uint64

	// dispatchErr latches the first error raised by a dispatch that runs
	// inside completion handling (queue-head placement).
	dispatchErr error

	tracer *trace.Tracer
	reg    *trace.Registry
	latD   *trace.Dist
	queueD *trace.Dist
	svcD   *trace.Dist
	coldD  *trace.Dist
}

// Run executes one load run. The returned Report is a pure function of
// cfg: rerunning with the same config reproduces it byte-for-byte.
func Run(cfg Config) (*Report, error) {
	if cfg.Spec.Build == nil || cfg.Spec.Request == nil {
		return nil, fmt.Errorf("loadgen: config has no function spec")
	}
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("loadgen: RPS must be positive, got %g", cfg.RPS)
	}
	if cfg.Duration == 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive")
	}
	if cfg.MaxInstances == 0 {
		cfg.MaxInstances = DefaultMaxInstances
	}
	if cfg.MaxInstances < 1 {
		return nil, fmt.Errorf("loadgen: MaxInstances must be >= 1, got %d", cfg.MaxInstances)
	}
	// The engine owns observability: machine-level tracing stays off so
	// instances run the event-free hot path.
	cfg.Spec.Trace = trace.Options{}

	e := &engine{cfg: cfg, reqMsg: cfg.Spec.Request()}
	e.arrives = genArrivals(cfg)
	e.invs = make([]Invocation, len(e.arrives))
	e.tracer = trace.NewTracer(6*len(e.arrives) + 64)
	e.initRegistry()

	if err := e.bootMaster(); err != nil {
		return nil, err
	}
	if err := e.simulate(); err != nil {
		return nil, err
	}
	return e.report()
}

// RunMany executes one load run per config across a worker pool of jobs
// workers (0 = sweep.DefaultJobs()); configs without their own Cache
// share one, so all points of a sweep boot each fingerprint once.
// Reports come back in config order and each is byte-identical to a solo
// Run of the same config — parallelism only exists between points.
func RunMany(cfgs []Config, jobs int) ([]*Report, []error) {
	shared := harness.NewBootCache()
	reports := make([]*Report, len(cfgs))
	errs := make([]error, len(cfgs))
	sweep.Each(len(cfgs), jobs, func(i int) {
		c := cfgs[i]
		if c.Cache == nil {
			c.Cache = shared
		}
		reports[i], errs[i] = Run(c)
	})
	return reports, errs
}

func (e *engine) initRegistry() {
	r := trace.NewRegistry()
	e.reg = r
	e.latD = r.NewDist("load.latencyNS", "end-to-end invocation latency (virtual ns)")
	e.queueD = r.NewDist("load.queueDelayNS", "arrival-to-placement queueing delay (virtual ns)")
	e.svcD = r.NewDist("load.serviceNS", "on-instance service time (virtual ns)")
	e.coldD = r.NewDist("load.coldPenaltyNS", "cold-start boot penalty (virtual ns)")
	r.Counter("load.coldStarts", "invocations that created an instance", &e.coldStarts)
	r.Counter("load.warmStarts", "invocations served by a warm instance", &e.warmStarts)
	r.Counter("load.churnColdStarts", "post-warmup cold starts (keep-alive churn)", &e.churnColds)
	r.Counter("load.reclaims", "idle instances reclaimed by keep-alive", &e.reclaims)
	r.Counter("load.peakInstances", "pool high-water mark", &e.peak)
	r.Counter("load.maxQueueDepth", "deepest FIFO backlog at the pool cap", &e.maxQueue)
	r.Counter("load.checkFailures", "responses failing the spec's check", &e.checkFailures)
	r.Func("load.invocations", "arrivals replayed against the pool", func() uint64 {
		return uint64(len(e.arrives))
	})
}

// bootMaster simulates (or fetches from the cache) the post-boot
// checkpoint instances restore from.
func (e *engine) bootMaster() error {
	b, err := harness.BootSpec(e.cfg.Cfg, e.cfg.Spec)
	if err != nil {
		return fmt.Errorf("loadgen: master boot: %w", err)
	}
	ck, setupInsts, err := e.cfg.Cache.CheckpointFor(b)
	if err != nil {
		return fmt.Errorf("loadgen: master setup: %w", err)
	}
	e.memoizable = b.Memoizable()
	if e.memoizable {
		e.masterCk = ck
		e.masterNS = setupInsts
	}
	return nil
}

// newInstance cold-starts an instance: a reclaimed machine re-restored
// from the master checkpoint when possible, otherwise a freshly booted
// one. The simulated client is killed so the engine can drive the
// surviving server host-side.
func (e *engine) newInstance() (*instance, error) {
	if n := len(e.free); n > 0 && e.memoizable {
		inst := e.free[n-1]
		e.free = e.free[:n-1]
		if err := inst.b.M.Restore(e.masterCk); err != nil {
			return nil, fmt.Errorf("loadgen: re-restore: %w", err)
		}
		if err := inst.b.M.KillProcess("client"); err != nil {
			return nil, err
		}
		inst.id = e.nextInstID
		e.nextInstID++
		return inst, nil
	}
	b, err := harness.BootSpec(e.cfg.Cfg, e.cfg.Spec)
	if err != nil {
		return nil, fmt.Errorf("loadgen: instance boot: %w", err)
	}
	ck := e.masterCk
	penalty := e.masterNS
	if !e.memoizable {
		// Host-side service state cannot be cloned, so this instance
		// simulates its own container setup — the true cold-start cost.
		ck, err = b.Setup()
		if err != nil {
			return nil, fmt.Errorf("loadgen: instance setup: %w", err)
		}
		penalty = b.SetupInsts()
	}
	if err := b.M.Restore(ck); err != nil {
		return nil, fmt.Errorf("loadgen: restore: %w", err)
	}
	if err := b.M.KillProcess("client"); err != nil {
		return nil, err
	}
	reqCh, respCh := b.ClientChans()
	inst := &instance{id: e.nextInstID, b: b, reqCh: reqCh, respCh: respCh, penalty: penalty}
	e.nextInstID++
	return inst, nil
}

// serve drives one invocation through inst's machine and returns the
// service time on the virtual clock.
func (e *engine) serve(inst *instance, invID int) (uint64, error) {
	m := inst.b.M
	t0 := m.VirtNS()
	m.K.Inject(inst.reqCh, e.reqMsg)
	if err := m.RunUntilIdle(invokeBudget); err != nil {
		return 0, fmt.Errorf("loadgen: invocation %d on instance %d: %w", invID, inst.id, err)
	}
	resp, ok := m.K.TakeMessage(inst.respCh)
	if !ok {
		return 0, fmt.Errorf("loadgen: invocation %d on instance %d: server produced no reply", invID, inst.id)
	}
	if check := e.cfg.Spec.Check; check != nil {
		if err := check(rpc.NewReader(resp)); err != nil {
			e.checkFailures++
			e.invs[invID].CheckFailed = true
		}
	}
	return m.VirtNS() - t0, nil
}

// simulate runs the discrete-event loop: arrivals and completions in
// virtual-time order with deterministic tie-breaks (completions first, so
// a finishing instance can absorb an arrival at the same instant).
func (e *engine) simulate() error {
	next := 0
	for next < len(e.arrives) || len(e.busy) > 0 {
		ci := e.earliestCompletion()
		if ci >= 0 && (next >= len(e.arrives) || e.busy[ci].done <= e.arrives[next]) {
			rec := e.busy[ci]
			e.busy = append(e.busy[:ci], e.busy[ci+1:]...)
			e.complete(rec)
			if e.dispatchErr != nil {
				return e.dispatchErr
			}
			continue
		}
		id := next
		next++
		now := e.arrives[id]
		e.invs[id].ID = id
		e.invs[id].Arrive = now
		e.tracer.EmitAt(trace.EvInvokeArrive, 0, now, 0, uint64(id), 0)
		if err := e.dispatch(id, now); err != nil {
			return err
		}
	}
	return nil
}

// earliestCompletion returns the busy index with the smallest completion
// time (ties: lowest invocation id), or -1.
func (e *engine) earliestCompletion() int {
	best := -1
	for i := range e.busy {
		if best < 0 || e.busy[i].done < e.busy[best].done ||
			(e.busy[i].done == e.busy[best].done && e.busy[i].inv < e.busy[best].inv) {
			best = i
		}
	}
	return best
}

// leaseEnd is when an idle instance's keep-alive lease expires
// (overflow-safe: a huge keep-alive never expires).
func (e *engine) leaseEnd(inst *instance) uint64 {
	end := inst.idleSince + e.cfg.KeepAlive
	if end < inst.idleSince {
		return ^uint64(0)
	}
	return end
}

// reclaimExpired tears down idle instances whose lease ended at or before
// now, stamping the reclaim at the lease end (when it really happened).
func (e *engine) reclaimExpired(now uint64) {
	kept := e.idle[:0]
	for _, inst := range e.idle {
		end := e.leaseEnd(inst)
		if end > now {
			kept = append(kept, inst)
			continue
		}
		e.reclaims++
		e.live--
		e.tracer.EmitAt(trace.EvInstReclaim, uint8(inst.id), end, 0, uint64(inst.id), 0)
		if e.memoizable {
			e.free = append(e.free, inst)
		}
	}
	e.idle = kept
}

// takeWarm removes and returns the warm instance that has been idle the
// shortest time (ties: lowest id) — the usual most-recently-used
// keep-alive policy — or nil when none is live and warm.
func (e *engine) takeWarm() *instance {
	best := -1
	for i, inst := range e.idle {
		if best < 0 || inst.idleSince > e.idle[best].idleSince ||
			(inst.idleSince == e.idle[best].idleSince && inst.id < e.idle[best].id) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	inst := e.idle[best]
	e.idle = append(e.idle[:best], e.idle[best+1:]...)
	return inst
}

// dispatch places invocation id arriving (or dequeued) at now onto a
// warm instance, a cold-started one, or the FIFO queue at the pool cap.
func (e *engine) dispatch(id int, now uint64) error {
	e.reclaimExpired(now)
	if inst := e.takeWarm(); inst != nil {
		e.warmStarts++
		return e.start(id, now, inst, false)
	}
	if e.live < e.cfg.MaxInstances {
		inst, err := e.newInstance()
		if err != nil {
			return err
		}
		e.live++
		e.coldStarts++
		if uint64(e.live) > e.peak {
			e.peak = uint64(e.live)
		} else {
			// Refilling capacity the keep-alive policy reclaimed earlier:
			// a churn cold start, the post-warmup kind.
			e.churnColds++
		}
		e.tracer.EmitAt(trace.EvColdStart, uint8(inst.id), now, 0, uint64(inst.id), inst.penalty)
		return e.start(id, now, inst, true)
	}
	e.queue = append(e.queue, id)
	if uint64(len(e.queue)) > e.maxQueue {
		e.maxQueue = uint64(len(e.queue))
	}
	return nil
}

// start serves invocation id on inst beginning at now (plus the boot
// penalty when cold) and books the completion.
func (e *engine) start(id int, now uint64, inst *instance, cold bool) error {
	inv := &e.invs[id]
	inv.Instance = inst.id
	inv.Cold = cold
	inv.QueueDelay = now - inv.Arrive
	startNS := now
	if cold {
		inv.ColdPenalty = inst.penalty
		startNS += inst.penalty
	}
	svc, err := e.serve(inst, id)
	if err != nil {
		return err
	}
	inv.Start = startNS
	inv.Service = svc
	inv.Done = startNS + svc
	inv.Latency = inv.Done - inv.Arrive
	e.tracer.EmitAt(trace.EvInvokeRun, uint8(inst.id), startNS, 0, uint64(id), svc)
	e.busy = append(e.busy, busyRec{inst: inst, inv: id, done: inv.Done})
	return nil
}

// complete retires one invocation: the instance idles from the
// completion instant and the queue head (if any) is placed immediately —
// warm, on the instance that just freed up.
func (e *engine) complete(rec busyRec) {
	inv := &e.invs[rec.inv]
	now := rec.done
	rec.inst.idleSince = now
	e.idle = append(e.idle, rec.inst)
	e.tracer.EmitAt(trace.EvInvokeDone, 0, now, 0, uint64(rec.inv), inv.Latency)
	e.latD.Observe(inv.Latency)
	e.queueD.Observe(inv.QueueDelay)
	e.svcD.Observe(inv.Service)
	if inv.Cold {
		e.coldD.Observe(inv.ColdPenalty)
	}
	if len(e.queue) > 0 {
		id := e.queue[0]
		e.queue = e.queue[1:]
		// Normally the queue head lands warm on the instance that just
		// idled; with KeepAlive 0 it can cold-start instead, which may
		// fail — latch the error for simulate to surface.
		if err := e.dispatch(id, now); err != nil && e.dispatchErr == nil {
			e.dispatchErr = err
		}
	}
}
