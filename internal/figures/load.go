package figures

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/loadgen"
)

// The open-loop load study (internal/loadgen): a throughput-vs-tail-
// latency curve over an arrival-rate grid, and a cold-start-rate table
// over a keep-alive grid. Both run their points across the worker pool
// with a shared boot cache; like every other figure, the projected Data
// is identical for every jobs value.

// LoadRPSGrid is the default arrival-rate grid (invocations per virtual
// second) of the throughput study.
var LoadRPSGrid = []float64{50, 100, 200, 400}

// LoadKeepAliveGrid is the default keep-alive grid (virtual ns) of the
// cold-start study. The last point outlives the run window, so its churn
// cold-start count is structurally zero.
var LoadKeepAliveGrid = []uint64{0, 1_000_000, 5_000_000, 10_000_000, 500_000_000}

// loadBase is the study's common configuration: the acceptance-point
// workload (fibonacci-go) with a 50 ms arrival window.
func loadBase(arch isa.Arch, seed uint64) (loadgen.Config, error) {
	for _, sp := range harness.StandaloneSpecs() {
		if sp.Name == "fibonacci-go" {
			return loadgen.Config{
				Cfg:       gemsys.DefaultConfig(arch),
				Spec:      sp,
				RPS:       200,
				Duration:  50_000_000,
				KeepAlive: 10_000_000,
				Seed:      seed,
			}, nil
		}
	}
	return loadgen.Config{}, fmt.Errorf("figures: fibonacci-go missing from catalog")
}

// LoadCurve sweeps the arrival rate and projects achieved throughput
// against the latency tail — the figure that shows where queueing and
// cold starts bend the curve.
func LoadCurve(arch isa.Arch, seed uint64, jobs int) (Data, error) {
	base, err := loadBase(arch, seed)
	if err != nil {
		return Data{}, err
	}
	cfgs := make([]loadgen.Config, len(LoadRPSGrid))
	for i, rps := range LoadRPSGrid {
		cfgs[i] = base
		cfgs[i].RPS = rps
	}
	reps, errs := loadgen.RunMany(cfgs, jobs)
	d := Data{
		ID:    "fig-load-curve",
		Title: fmt.Sprintf("Open-loop throughput vs tail latency, fibonacci-go (%s, seed %d)", arch, seed),
		Columns: []string{"offered rps", "achieved rps", "p50 us", "p95 us", "p99 us",
			"max queue", "cold starts"},
	}
	for i, rep := range reps {
		if errs[i] != nil {
			return Data{}, fmt.Errorf("load curve point %.0f rps: %w", LoadRPSGrid[i], errs[i])
		}
		d.Rows = append(d.Rows, Row{
			Label: fmt.Sprintf("%.0f rps", LoadRPSGrid[i]),
			Values: []float64{
				LoadRPSGrid[i],
				rep.Throughput,
				float64(rep.Latency.P50) / 1e3,
				float64(rep.Latency.P95) / 1e3,
				float64(rep.Latency.P99) / 1e3,
				float64(rep.MaxQueueDepth),
				float64(rep.ColdStarts),
			},
		})
	}
	return d, nil
}

// LoadKeepAlive sweeps the keep-alive threshold and projects the
// cold-start mix — the table that shows keep-alive trading memory
// (instance-lifetime) for tail latency.
func LoadKeepAlive(arch isa.Arch, seed uint64, jobs int) (Data, error) {
	base, err := loadBase(arch, seed)
	if err != nil {
		return Data{}, err
	}
	cfgs := make([]loadgen.Config, len(LoadKeepAliveGrid))
	for i, ka := range LoadKeepAliveGrid {
		cfgs[i] = base
		cfgs[i].KeepAlive = ka
	}
	reps, errs := loadgen.RunMany(cfgs, jobs)
	d := Data{
		ID:    "table-load-keepalive",
		Title: fmt.Sprintf("Cold-start rate vs keep-alive, fibonacci-go (%s, seed %d)", arch, seed),
		Columns: []string{"cold starts", "churn cold", "warm", "reclaims",
			"cold %", "p99 us"},
	}
	for i, rep := range reps {
		if errs[i] != nil {
			return Data{}, fmt.Errorf("keep-alive point %d ns: %w", LoadKeepAliveGrid[i], errs[i])
		}
		d.Rows = append(d.Rows, Row{
			Label: fmt.Sprintf("%.1f ms", float64(LoadKeepAliveGrid[i])/1e6),
			Values: []float64{
				float64(rep.ColdStarts),
				float64(rep.ChurnColdStarts),
				float64(rep.WarmStarts),
				float64(rep.Reclaims),
				100 * rep.ColdRate(),
				float64(rep.Latency.P99) / 1e3,
			},
		})
	}
	return d, nil
}
