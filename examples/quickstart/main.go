// Quickstart: run one serverless function (fibonacci on the Go runtime)
// through the full methodology on the simulated RISC-V system and print
// the cold-versus-warm statistics — the minimal end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	"svbench"
)

func main() {
	spec := svbench.StandaloneSpecs()[0] // fibonacci-go
	res, err := svbench.RunFunction(svbench.RV64, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("function %s on %s\n", res.Name, res.Arch)
	fmt.Printf("  cold execution: %8d cycles  (%d instructions, CPI %.2f)\n",
		res.Cold.Cycles, res.Cold.Insts, res.Cold.CPI())
	fmt.Printf("  warm execution: %8d cycles  (%d instructions, CPI %.2f)\n",
		res.Warm.Cycles, res.Warm.Insts, res.Warm.CPI())
	fmt.Printf("  cold start penalty: %.1fx\n",
		float64(res.Cold.Cycles)/float64(res.Warm.Cycles))
	fmt.Printf("  cold cache misses: L1I=%d L1D=%d L2=%d\n",
		res.Cold.L1IMisses, res.Cold.L1DMisses, res.Cold.L2Misses)
}
