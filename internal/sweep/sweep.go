// Package sweep runs experiment matrices — the cross product of machine
// configurations and workload specs — across a pool of workers, each on
// a fully isolated simulated machine, with cross-run memoization of
// post-boot checkpoints (see harness.BootCache).
//
// Determinism is the contract: for the same task list, Run's output is
// identical regardless of worker count or memoization. Outcomes come
// back in task order, every run's machine is private to it, and
// memoized runs restore checkpoints byte-equal to what their own setup
// would produce. The only thing allowed to vary is the interleaving of
// progress log lines.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
)

// Task is one experiment: a workload spec on a machine configuration.
type Task struct {
	Cfg  gemsys.Config
	Spec harness.Spec
}

// Outcome is one task's result, in the same position as its task.
type Outcome struct {
	Task   Task
	Result *harness.Result
	Err    error
}

// Options configures a sweep.
type Options struct {
	// Jobs is the worker count; 0 means DefaultJobs(). Values below 1
	// are rejected by ValidateJobs and cause Run to panic — CLI flag
	// handlers must validate first.
	Jobs int
	// DisableMemo turns off checkpoint memoization: every run simulates
	// its own setup phase. Results are identical either way.
	DisableMemo bool
	// Cache, when non-nil, is used instead of a fresh per-sweep cache,
	// so checkpoints memoize across successive sweeps in one process.
	// Ignored when DisableMemo is set.
	Cache *harness.BootCache
	// Log, when non-nil, receives one progress line per finished task.
	// Line order follows completion order, not task order.
	Log func(string)
}

// DefaultJobs is the worker count used when Options.Jobs is zero.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// ValidateJobs rejects non-positive worker counts.
func ValidateJobs(jobs int) error {
	if jobs < 1 {
		return fmt.Errorf("jobs must be >= 1, got %d", jobs)
	}
	return nil
}

// Each runs fn(0)…fn(n-1) across a pool of jobs workers (0 selects
// DefaultJobs; below 1 panics like Run). Indices are handed out in order
// and every call completes before Each returns. fn writes its result
// into its own slot of a caller-owned slice, which is what keeps outputs
// in input order no matter how the workers interleave — the same merge
// discipline Run uses for experiment matrices, generalized for other
// per-index work (the load engine's sweep points).
func Each(n, jobs int, fn func(i int)) {
	if jobs == 0 {
		jobs = DefaultJobs()
	}
	if err := ValidateJobs(jobs); err != nil {
		panic("sweep: " + err.Error())
	}
	if jobs > n {
		jobs = n
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Run executes every task and returns outcomes in task order. Workers
// pick tasks in order; each task runs on its own machine, so runs never
// share mutable state (cached checkpoints are handed out as private
// deep clones).
func Run(tasks []Task, opt Options) []Outcome {
	jobs := opt.Jobs
	if jobs == 0 {
		jobs = DefaultJobs()
	}
	if err := ValidateJobs(jobs); err != nil {
		panic("sweep: " + err.Error())
	}
	if jobs > len(tasks) {
		jobs = len(tasks)
	}

	cache := opt.Cache
	if cache == nil && !opt.DisableMemo {
		cache = harness.NewBootCache()
	}
	if opt.DisableMemo {
		cache = nil
	}

	out := make([]Outcome, len(tasks))
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		if opt.Log == nil {
			return
		}
		logMu.Lock()
		opt.Log(fmt.Sprintf(format, args...))
		logMu.Unlock()
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t := tasks[i]
				res, err := harness.RunCached(t.Cfg, t.Spec, cache)
				out[i] = Outcome{Task: t, Result: res, Err: err}
				if err != nil {
					logf("%s %-24s FAILED: %v", t.Cfg.Arch, t.Spec.Name, err)
				} else {
					logf("%s %-24s cold=%-9d warm=%d", t.Cfg.Arch, t.Spec.Name, res.Cold.Cycles, res.Warm.Cycles)
				}
			}
		}()
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
