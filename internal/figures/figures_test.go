package figures

import (
	"strings"
	"testing"

	"svbench/internal/harness"
	"svbench/internal/isa"
	"svbench/internal/stats"
)

func fakeResults() *Results {
	mk := func(base uint64) *harness.Result {
		return &harness.Result{
			Cold: stats.CoreStats{Cycles: base * 10, Insts: base * 4,
				L1IMisses: base, L1DMisses: base * 2, L2Misses: base / 2},
			Warm: stats.CoreStats{Cycles: base, Insts: base * 2,
				L1IMisses: base / 4, L1DMisses: base / 8, L2Misses: base / 16},
		}
	}
	r := &Results{
		Fn:    map[isa.Arch]map[string]*harness.Result{},
		Hotel: map[isa.Arch]map[string]*harness.Result{},
	}
	for _, a := range []isa.Arch{isa.RV64, isa.CISC64} {
		r.Fn[a] = map[string]*harness.Result{}
		r.Hotel[a] = map[string]*harness.Result{}
		for i, n := range FnOrder {
			r.Fn[a][n] = mk(uint64(100 + 10*i))
		}
		for i, n := range HotelOrder {
			r.Hotel[a][n] = mk(uint64(1000 + 100*i))
		}
	}
	return r
}

func TestAllFigureProjections(t *testing.T) {
	r := fakeResults()
	figs := []struct {
		name string
		gen  func() Data
		rows int
		cols int
	}{
		{"4.4", r.Fig44, len(FnOrder), 2},
		{"4.5", r.Fig45, len(HotelOrder), 2},
		{"4.6", r.Fig46, len(HotelOrder), 2},
		{"4.7", r.Fig47, len(HotelOrder), 2},
		{"4.8", r.Fig48, len(HotelOrder), 2},
		{"4.9", r.Fig49, len(HotelOrder), 2},
		{"4.10", r.Fig410, len(GoFnOrder), 2},
		{"4.11", r.Fig411, len(GoFnOrder), 2},
		{"4.12", r.Fig412, len(FnOrder), 2},
		{"4.13", r.Fig413, len(PyFnOrder), 2},
		{"4.14", r.Fig414, len(HotelOrder), 2},
		{"4.15", r.Fig415, len(FnOrder), 4},
		{"4.16", r.Fig416, len(FnOrder), 4},
		{"4.17", r.Fig417, len(FnOrder), 4},
		{"4.18", r.Fig418, len(FnOrder), 4},
		{"4.19", r.Fig419, len(HotelOrder), 4},
	}
	for _, f := range figs {
		d := f.gen()
		if len(d.Rows) != f.rows {
			t.Errorf("fig %s: %d rows, want %d", f.name, len(d.Rows), f.rows)
		}
		if len(d.Columns) != f.cols {
			t.Errorf("fig %s: %d columns, want %d", f.name, len(d.Columns), f.cols)
		}
		for _, row := range d.Rows {
			if len(row.Values) != f.cols {
				t.Errorf("fig %s row %s: %d values", f.name, row.Label, len(row.Values))
			}
		}
	}
}

func TestPercentSplitSumsTo100(t *testing.T) {
	r := fakeResults()
	for _, d := range []Data{r.Fig48(), r.Fig49()} {
		for _, row := range d.Rows {
			if s := row.Values[0] + row.Values[1]; s < 99.9 || s > 100.1 {
				t.Errorf("%s %s: split sums to %.2f", d.ID, row.Label, s)
			}
		}
	}
	if got := pctSplit(0, 0); got[0] != 0 || got[1] != 0 {
		t.Error("empty split must be 0/0")
	}
}

func TestMarkdownAndCSVRendering(t *testing.T) {
	d := Data{
		ID: "figX", Title: "Demo", Columns: []string{"a", "b"},
		Rows: []Row{{Label: "row1", Values: []float64{1, 2.5}}},
	}
	md := d.Markdown()
	if !strings.Contains(md, "### figX — Demo") || !strings.Contains(md, "| row1 | 1 | 2.50 |") {
		t.Fatalf("markdown:\n%s", md)
	}
	csv := d.CSV()
	if !strings.HasPrefix(csv, "benchmark,a,b\n") || !strings.Contains(csv, "row1,1,2.5\n") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestTable41ContainsThesisParameters(t *testing.T) {
	d := Table41()
	byLabel := map[string]float64{}
	for _, r := range d.Rows {
		byLabel[r.Label] = r.Values[0]
	}
	if byLabel["ROB entries"] != 192 || byLabel["L2 bytes/core"] != 512<<10 ||
		byLabel["cores"] != 2 || byLabel["clock MHz"] != 1000 {
		t.Fatalf("table 4.1 values: %v", byLabel)
	}
}
