package cisc

import (
	"fmt"

	"svbench/internal/isa"
)

// maxBlockLen caps a translated basic block. Long straight-line runs are
// split; the tail simply becomes another block keyed by its own entry PC.
const maxBlockLen = 32

// block is a translated basic block: a straight-line run of decoded
// instructions starting at pc, terminated by a control-flow instruction,
// a syscall, or maxBlockLen. All but the last instruction are guaranteed
// straight-line. The decoded instructions, trace templates and lowered
// uops are immutable after construction — execution copies the
// per-instruction TraceRec templates and never writes back. The link
// fields are the one mutable part: a two-entry inline cache of successor
// blocks, patched on the first fully-executed transition and severed by
// InvalidateBlocks and ResetChains (checkpoint restore).
type block struct {
	pc    uint64
	end   uint64 // fall-through PC after the last instruction
	insts []Inst
	recs  []isa.TraceRec
	uops  []uop
	cnt   isa.ClassCounts // static census of recs (whole-block fast-lane add)

	// Superblock links: successor blocks keyed by the architectural next
	// PC observed after this block completed. Two slots cover the common
	// shapes (taken + fall-through of a conditional branch, or a
	// monomorphic call/return target); polymorphic successors beyond two
	// deliberately stay unpatched so a megamorphic indirect jump cannot
	// thrash the cache.
	link0pc uint64
	link1pc uint64
	link0   *block
	link1   *block

	// epoch marks the chain-telemetry generation (DecodeCache.epoch) in
	// which this block was last counted as "entered"; see enterBlock.
	epoch uint64
}

// blockEnds reports whether k terminates a basic block.
func blockEnds(k Kind) bool {
	switch k {
	case KindJE, KindJNE, KindJL, KindJLE, KindJG, KindJGE, KindJB, KindJAE,
		KindJMP, KindCALL, KindCALLr, KindJMPr, KindRET, KindSYSCALL:
		return true
	}
	return false
}

// recTemplate precomputes every TraceRec field that does not depend on
// register, flag or memory state. Dynamic fields (Taken, indirect Target,
// MemAddr, ecall Flags/Seq) stay zero and are filled at execution time.
func recTemplate(pc uint64, in Inst) isa.TraceRec {
	rec := isa.TraceRec{
		PC: pc, Size: in.Size, Class: isa.ClassAlu,
		Src1: isa.NoDep, Src2: isa.NoDep, Dst: isa.NoDep,
		MicroOps: 1,
	}
	next := pc + uint64(in.Size)
	switch in.Kind {
	case KindNOP:
	case KindFENCE:
		rec.Class = isa.ClassFence
	case KindMOVri, KindMOVri32:
		rec.Dst = in.Dst
	case KindMOVrr:
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindADD, KindSUB, KindAND, KindOR, KindXOR, KindSHL, KindSHR, KindSAR:
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindMUL:
		rec.Class = isa.ClassMul
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindDIV, KindREM, KindDIVU, KindREMU:
		rec.Class = isa.ClassDiv
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, in.Dst
	case KindADDri32, KindANDri32, KindORri32, KindXORri32,
		KindSHLri8, KindSHRri8, KindSARri8:
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindMULri32:
		rec.Class = isa.ClassMul
		rec.Src1, rec.Dst = in.Dst, in.Dst
	case KindLDB, KindLDBU:
		rec.Class, rec.MemSize = isa.ClassLoad, 1
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindLDH, KindLDHU:
		rec.Class, rec.MemSize = isa.ClassLoad, 2
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindLDW, KindLDWU:
		rec.Class, rec.MemSize = isa.ClassLoad, 4
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindLDQ:
		rec.Class, rec.MemSize = isa.ClassLoad, 8
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindSTB:
		rec.Class, rec.MemSize = isa.ClassStore, 1
		rec.Src1, rec.Src2 = in.Dst, in.Src
	case KindSTH:
		rec.Class, rec.MemSize = isa.ClassStore, 2
		rec.Src1, rec.Src2 = in.Dst, in.Src
	case KindSTW:
		rec.Class, rec.MemSize = isa.ClassStore, 4
		rec.Src1, rec.Src2 = in.Dst, in.Src
	case KindSTQ:
		rec.Class, rec.MemSize = isa.ClassStore, 8
		rec.Src1, rec.Src2 = in.Dst, in.Src
	case KindCMPrr:
		rec.Src1, rec.Src2, rec.Dst = in.Dst, in.Src, RegFlags
	case KindCMPri32:
		rec.Src1, rec.Dst = in.Dst, RegFlags
	case KindJE, KindJNE, KindJL, KindJLE, KindJG, KindJGE, KindJB, KindJAE:
		rec.Class = isa.ClassBranch
		rec.Src1 = RegFlags
		rec.Target = next + uint64(in.Imm)
	case KindSETE, KindSETNE, KindSETL, KindSETLE, KindSETG, KindSETGE, KindSETB, KindSETAE:
		rec.Src1, rec.Dst = RegFlags, in.Dst
	case KindJMP:
		rec.Class = isa.ClassJump
		rec.Taken = true
		rec.Target = next + uint64(in.Imm)
	case KindCALL:
		rec.Class = isa.ClassCall
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Dst = RSP, RSP
		rec.Taken = true
		rec.Target = next + uint64(in.Imm)
	case KindCALLr:
		rec.Class = isa.ClassCall
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Src2, rec.Dst = in.Src, RSP, RSP
		rec.Taken = true
	case KindJMPr:
		rec.Class = isa.ClassJump
		rec.Src1 = in.Src
		rec.Taken = true
	case KindRET:
		rec.Class = isa.ClassRet
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Dst = RSP, RSP
		rec.Taken = true
	case KindPUSH:
		rec.Class = isa.ClassStore
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Src2, rec.Dst = in.Dst, RSP, RSP
	case KindPOP:
		rec.Class = isa.ClassLoad
		rec.MemSize = 8
		rec.MicroOps = 2
		rec.Src1, rec.Dst = RSP, in.Dst
	case KindLEA:
		rec.Src1, rec.Dst = in.Src, in.Dst
	case KindSYSCALL:
		rec.Class = isa.ClassEcall
	}
	return rec
}

// uop is one direct-threaded micro-operation of a translated block: a
// dense handler index plus every operand the handler needs, precomputed
// at translation time so the execution loop is a tight array walk with no
// decode-shaped work (variable-length sizes included) left in it.
// Immediates are pre-extended, shift amounts pre-masked, direct
// branch/call targets and fall-through/return PCs absolute.
type uop struct {
	op  uint8
	dst uint8
	src uint8
	imm int64  // signed immediate: CMPri compare value, fall-through/push PC
	aux uint64 // precomputed: zext immediate, direct target, masked shift amount
	pc  uint64 // this instruction's PC
}

// Direct-threaded handler indices. The space is dense and small so the
// execution switch compiles to a jump table.
const (
	uNOP   uint8 = iota // nop, fence
	uMOVI               // dst = aux (MOVri/MOVri32 folded)
	uMOVrr
	uADDrr
	uSUBrr
	uMULrr
	uDIVrr
	uREMrr
	uDIVUrr
	uREMUrr
	uANDrr
	uORrr
	uXORrr
	uSHLrr
	uSHRrr
	uSARrr
	uADDI // dst op= aux
	uANDI
	uORI
	uXORI
	uMULI
	uSHLI // pre-masked shift amount in aux
	uSHRI
	uSARI
	uLDB // sign-extending loads, addr = src + aux
	uLDH
	uLDW
	uLDBU // zero-extending loads
	uLDHU
	uLDWU
	uLDQ
	uSTB // stores, addr = dst + aux, value src
	uSTH
	uSTW
	uSTQ
	uCMPrr
	uCMPri // compare value in imm
	uSETE
	uSETNE
	uSETL
	uSETLE
	uSETG
	uSETGE
	uSETB
	uSETAE
	uPUSH
	uPOP
	uLEA
	uJMP   // pc = aux
	uJE    // taken target in aux, fall-through in imm
	uJNE
	uJL
	uJLE
	uJG
	uJGE
	uJB
	uJAE
	uCALL    // push imm (return PC), pc = aux
	uCALLr   // push imm, pc = src
	uJMPr    // pc = src
	uRET     // pc = pop
	uSYSCALL // fall-through in imm
	uBAD
)

// lowerInst translates one decoded instruction at pc into its uop. The
// lockstep differential tests pin every lowering against Core.Step.
func lowerInst(pc uint64, in Inst) uop {
	next := pc + uint64(in.Size)
	u := uop{dst: in.Dst, src: in.Src, imm: in.Imm, pc: pc}
	switch in.Kind {
	case KindNOP, KindFENCE:
		u.op = uNOP
	case KindMOVri, KindMOVri32:
		u.op, u.aux = uMOVI, uint64(in.Imm)
	case KindMOVrr:
		u.op = uMOVrr
	case KindADD:
		u.op = uADDrr
	case KindSUB:
		u.op = uSUBrr
	case KindMUL:
		u.op = uMULrr
	case KindDIV:
		u.op = uDIVrr
	case KindREM:
		u.op = uREMrr
	case KindDIVU:
		u.op = uDIVUrr
	case KindREMU:
		u.op = uREMUrr
	case KindAND:
		u.op = uANDrr
	case KindOR:
		u.op = uORrr
	case KindXOR:
		u.op = uXORrr
	case KindSHL:
		u.op = uSHLrr
	case KindSHR:
		u.op = uSHRrr
	case KindSAR:
		u.op = uSARrr
	case KindADDri32:
		u.op, u.aux = uADDI, uint64(in.Imm)
	case KindANDri32:
		u.op, u.aux = uANDI, uint64(in.Imm)
	case KindORri32:
		u.op, u.aux = uORI, uint64(in.Imm)
	case KindXORri32:
		u.op, u.aux = uXORI, uint64(in.Imm)
	case KindMULri32:
		u.op, u.aux = uMULI, uint64(in.Imm)
	case KindSHLri8:
		u.op, u.aux = uSHLI, uint64(in.Imm)&63
	case KindSHRri8:
		u.op, u.aux = uSHRI, uint64(in.Imm)&63
	case KindSARri8:
		u.op, u.aux = uSARI, uint64(in.Imm)&63
	case KindLDB:
		u.op, u.aux = uLDB, uint64(in.Imm)
	case KindLDH:
		u.op, u.aux = uLDH, uint64(in.Imm)
	case KindLDW:
		u.op, u.aux = uLDW, uint64(in.Imm)
	case KindLDBU:
		u.op, u.aux = uLDBU, uint64(in.Imm)
	case KindLDHU:
		u.op, u.aux = uLDHU, uint64(in.Imm)
	case KindLDWU:
		u.op, u.aux = uLDWU, uint64(in.Imm)
	case KindLDQ:
		u.op, u.aux = uLDQ, uint64(in.Imm)
	case KindSTB:
		u.op, u.aux = uSTB, uint64(in.Imm)
	case KindSTH:
		u.op, u.aux = uSTH, uint64(in.Imm)
	case KindSTW:
		u.op, u.aux = uSTW, uint64(in.Imm)
	case KindSTQ:
		u.op, u.aux = uSTQ, uint64(in.Imm)
	case KindCMPrr:
		u.op = uCMPrr
	case KindCMPri32:
		u.op = uCMPri
	case KindSETE:
		u.op = uSETE
	case KindSETNE:
		u.op = uSETNE
	case KindSETL:
		u.op = uSETL
	case KindSETLE:
		u.op = uSETLE
	case KindSETG:
		u.op = uSETG
	case KindSETGE:
		u.op = uSETGE
	case KindSETB:
		u.op = uSETB
	case KindSETAE:
		u.op = uSETAE
	case KindPUSH:
		u.op = uPUSH
	case KindPOP:
		u.op = uPOP
	case KindLEA:
		u.op, u.aux = uLEA, uint64(in.Imm)
	case KindJMP:
		u.op, u.aux = uJMP, next+uint64(in.Imm)
	case KindJE:
		u.op, u.aux, u.imm = uJE, next+uint64(in.Imm), int64(next)
	case KindJNE:
		u.op, u.aux, u.imm = uJNE, next+uint64(in.Imm), int64(next)
	case KindJL:
		u.op, u.aux, u.imm = uJL, next+uint64(in.Imm), int64(next)
	case KindJLE:
		u.op, u.aux, u.imm = uJLE, next+uint64(in.Imm), int64(next)
	case KindJG:
		u.op, u.aux, u.imm = uJG, next+uint64(in.Imm), int64(next)
	case KindJGE:
		u.op, u.aux, u.imm = uJGE, next+uint64(in.Imm), int64(next)
	case KindJB:
		u.op, u.aux, u.imm = uJB, next+uint64(in.Imm), int64(next)
	case KindJAE:
		u.op, u.aux, u.imm = uJAE, next+uint64(in.Imm), int64(next)
	case KindCALL:
		u.op, u.aux, u.imm = uCALL, next+uint64(in.Imm), int64(next)
	case KindCALLr:
		u.op, u.imm = uCALLr, int64(next)
	case KindJMPr:
		u.op = uJMPr
	case KindRET:
		u.op = uRET
	case KindSYSCALL:
		u.op, u.imm = uSYSCALL, int64(next)
	default:
		u.op = uBAD
	}
	return u
}

// blockAt returns the translated block entered at pc, building it on first
// use. A decode failure at the entry instruction is an error; a failure
// deeper in the run just ends the block early (the error surfaces if and
// when execution actually reaches that address).
func (d *DecodeCache) blockAt(pc uint64, mem *isa.Mem) (*block, error) {
	if d.mruB != nil && d.mruBPC == pc {
		return d.mruB, nil
	}
	if b, ok := d.blocks[pc]; ok {
		d.mruBPC, d.mruB = pc, b
		return b, nil
	}
	b := &block{pc: pc}
	p := pc
	for len(b.insts) < maxBlockLen {
		in, err := d.lookup(p, mem)
		if err != nil {
			if len(b.insts) == 0 {
				return nil, err
			}
			break
		}
		b.insts = append(b.insts, in)
		b.recs = append(b.recs, recTemplate(p, in))
		b.uops = append(b.uops, lowerInst(p, in))
		p += uint64(in.Size)
		if blockEnds(in.Kind) {
			break
		}
	}
	b.end = p
	b.cnt.AddRecs(b.recs)
	d.blocks[pc] = b
	d.mruBPC, d.mruB = pc, b
	return b, nil
}

// enterBlock resolves the block entered at pc through the entry-PC map —
// a chain miss — and maintains the telemetry separating map entries from
// link-followed transitions. Distinct-block accounting piggybacks here:
// after ResetChains every link is severed, so the first post-reset entry
// into any block necessarily comes through this path and the per-block
// epoch mark counts it exactly once.
func (d *DecodeCache) enterBlock(pc uint64, mem *isa.Mem) (*block, error) {
	b, err := d.blockAt(pc, mem)
	if err != nil {
		return nil, err
	}
	d.chainMisses++
	if b.epoch != d.epoch {
		b.epoch = d.epoch
		d.blocksUsed++
	}
	return b, nil
}

// StepN executes up to max instructions through the block cache. With a
// non-nil out it appends one TraceRec per retired instruction; with nil
// out it takes the no-trace lane and builds no records at all. It returns
// after the block boundary that follows any syscall so the machine can
// poll hook-side effects with single-step granularity.
//
// Steady-state execution never touches the entry-PC map: after a block
// runs to completion with budget remaining, the next block is resolved
// through the superblock link slots, trained on the first transition. A
// block truncated by the budget neither follows nor patches a link — the
// next StepN call re-enters through the map — so chain shape never
// depends on where quantum boundaries fall.
func (c *Core) StepN(max int, out []isa.TraceRec) (int, []isa.TraceRec, error) {
	if max <= 0 {
		return 0, out, nil
	}
	d := c.Dec
	b, err := d.enterBlock(c.pc, c.Mem)
	if err != nil {
		return 0, out, err
	}
	total := 0
	for {
		var n int
		var stop bool
		if out != nil {
			n, out, stop, err = c.stepBlockTrace(b, max-total, out)
		} else {
			n, stop, err = c.stepBlockFast(b, max-total)
		}
		total += n
		if err != nil || stop || total >= max {
			return total, out, err
		}
		pc := c.pc
		if b.link0pc == pc && b.link0 != nil {
			d.chainHits++
			b = b.link0
			continue
		}
		if b.link1pc == pc && b.link1 != nil {
			d.chainHits++
			b = b.link1
			continue
		}
		nb, err := d.enterBlock(pc, c.Mem)
		if err != nil {
			return total, out, err
		}
		if b.link0 == nil {
			b.link0pc, b.link0 = pc, nb
		} else if b.link1 == nil {
			b.link1pc, b.link1 = pc, nb
		}
		b = nb
	}
}

// stepBlockTrace executes up to max instructions of b, appending trace
// records built from the block's templates. stop reports that a syscall
// was executed and control must return to the driver. The semantics of
// every case mirror Core.Step exactly; the lockstep differential and fuzz
// tests pin the equivalence.
//
// Retired-instruction accounting is batched: c.nInstr is folded once at
// each exit (and just before a syscall hook runs, which observes the
// count) instead of per instruction.
func (c *Core) stepBlockTrace(b *block, max int, out []isa.TraceRec) (int, []isa.TraceRec, bool, error) {
	r := &c.Regs
	n := len(b.uops)
	full := n <= max
	if !full {
		n = max
	}
	// Append the whole run of template records in one shot, then patch the
	// dynamic fields in place while executing — one bulk copy instead of a
	// copy-then-append pair per instruction. Paths that retire fewer than n
	// instructions truncate back to what actually ran.
	base := len(out)
	out = append(out, b.recs[:n]...)
	ring := c.DebugRing != nil
	uops := b.uops[:n]
	for i := range uops {
		u := &uops[i]
		if ring {
			c.ringPush(u.pc)
		}
		switch u.op {
		case uNOP:
		case uMOVI:
			r[u.dst] = u.aux
		case uMOVrr:
			r[u.dst] = r[u.src]
		case uADDrr:
			r[u.dst] += r[u.src]
		case uSUBrr:
			r[u.dst] -= r[u.src]
		case uMULrr:
			r[u.dst] *= r[u.src]
		case uDIVrr:
			r[u.dst] = uint64(divS(int64(r[u.dst]), int64(r[u.src])))
		case uREMrr:
			r[u.dst] = uint64(remS(int64(r[u.dst]), int64(r[u.src])))
		case uDIVUrr:
			r[u.dst] = divU(r[u.dst], r[u.src])
		case uREMUrr:
			r[u.dst] = remU(r[u.dst], r[u.src])
		case uANDrr:
			r[u.dst] &= r[u.src]
		case uORrr:
			r[u.dst] |= r[u.src]
		case uXORrr:
			r[u.dst] ^= r[u.src]
		case uSHLrr:
			r[u.dst] <<= r[u.src] & 63
		case uSHRrr:
			r[u.dst] >>= r[u.src] & 63
		case uSARrr:
			r[u.dst] = uint64(int64(r[u.dst]) >> (r[u.src] & 63))
		case uADDI:
			r[u.dst] += u.aux
		case uANDI:
			r[u.dst] &= u.aux
		case uORI:
			r[u.dst] |= u.aux
		case uXORI:
			r[u.dst] ^= u.aux
		case uMULI:
			r[u.dst] *= u.aux
		case uSHLI:
			r[u.dst] <<= u.aux
		case uSHRI:
			r[u.dst] >>= u.aux
		case uSARI:
			r[u.dst] = uint64(int64(r[u.dst]) >> u.aux)
		case uLDB:
			addr := r[u.src] + u.aux
			r[u.dst] = isa.SignExtend(c.Mem.Load8(addr), 1)
			out[base+i].MemAddr = addr
		case uLDH:
			addr := r[u.src] + u.aux
			r[u.dst] = isa.SignExtend(c.Mem.Load16(addr), 2)
			out[base+i].MemAddr = addr
		case uLDW:
			addr := r[u.src] + u.aux
			r[u.dst] = isa.SignExtend(c.Mem.Load32(addr), 4)
			out[base+i].MemAddr = addr
		case uLDBU:
			addr := r[u.src] + u.aux
			r[u.dst] = c.Mem.Load8(addr)
			out[base+i].MemAddr = addr
		case uLDHU:
			addr := r[u.src] + u.aux
			r[u.dst] = c.Mem.Load16(addr)
			out[base+i].MemAddr = addr
		case uLDWU:
			addr := r[u.src] + u.aux
			r[u.dst] = c.Mem.Load32(addr)
			out[base+i].MemAddr = addr
		case uLDQ:
			addr := r[u.src] + u.aux
			r[u.dst] = c.Mem.Load64(addr)
			out[base+i].MemAddr = addr
		case uSTB:
			addr := r[u.dst] + u.aux
			c.Mem.Store8(addr, r[u.src])
			out[base+i].MemAddr = addr
		case uSTH:
			addr := r[u.dst] + u.aux
			c.Mem.Store16(addr, r[u.src])
			out[base+i].MemAddr = addr
		case uSTW:
			addr := r[u.dst] + u.aux
			c.Mem.Store32(addr, r[u.src])
			out[base+i].MemAddr = addr
		case uSTQ:
			addr := r[u.dst] + u.aux
			c.Mem.Store64(addr, r[u.src])
			out[base+i].MemAddr = addr
		case uCMPrr:
			c.flagA, c.flagB = int64(r[u.dst]), int64(r[u.src])
		case uCMPri:
			c.flagA, c.flagB = int64(r[u.dst]), u.imm
		case uSETE:
			r[u.dst] = b2u(c.flagA == c.flagB)
		case uSETNE:
			r[u.dst] = b2u(c.flagA != c.flagB)
		case uSETL:
			r[u.dst] = b2u(c.flagA < c.flagB)
		case uSETLE:
			r[u.dst] = b2u(c.flagA <= c.flagB)
		case uSETG:
			r[u.dst] = b2u(c.flagA > c.flagB)
		case uSETGE:
			r[u.dst] = b2u(c.flagA >= c.flagB)
		case uSETB:
			r[u.dst] = b2u(uint64(c.flagA) < uint64(c.flagB))
		case uSETAE:
			r[u.dst] = b2u(uint64(c.flagA) >= uint64(c.flagB))
		case uPUSH:
			r[RSP] -= 8
			c.Mem.Store64(r[RSP], r[u.dst])
			out[base+i].MemAddr = r[RSP]
		case uPOP:
			r[u.dst] = c.Mem.Load64(r[RSP])
			out[base+i].MemAddr = r[RSP]
			r[RSP] += 8
		case uLEA:
			r[u.dst] = r[u.src] + u.aux
		case uJMP:
			c.pc = u.aux
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJE:
			if c.flagA == c.flagB {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJNE:
			if c.flagA != c.flagB {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJL:
			if c.flagA < c.flagB {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJLE:
			if c.flagA <= c.flagB {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJG:
			if c.flagA > c.flagB {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJGE:
			if c.flagA >= c.flagB {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJB:
			if uint64(c.flagA) < uint64(c.flagB) {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJAE:
			if uint64(c.flagA) >= uint64(c.flagB) {
				c.pc = u.aux
				out[base+i].Taken = true
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uCALL:
			r[RSP] -= 8
			c.Mem.Store64(r[RSP], uint64(u.imm))
			out[base+i].MemAddr = r[RSP]
			c.pc = u.aux
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uCALLr:
			tgt := r[u.src]
			r[RSP] -= 8
			c.Mem.Store64(r[RSP], uint64(u.imm))
			out[base+i].MemAddr = r[RSP]
			c.pc = tgt
			out[base+i].Target = tgt
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uJMPr:
			c.pc = r[u.src]
			out[base+i].Target = c.pc
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uRET:
			t := c.Mem.Load64(r[RSP])
			out[base+i].MemAddr = r[RSP]
			r[RSP] += 8
			c.pc = t
			out[base+i].Target = t
			c.nInstr += uint64(i + 1)
			return i + 1, out, false, nil
		case uSYSCALL:
			c.pc = u.pc
			c.nInstr += uint64(i)
			if c.Hook == nil {
				return i, out[:base+i], true, fmt.Errorf("cisc: syscall with no hook at pc=%#x", u.pc)
			}
			rec := &out[base+i]
			c.inflight = rec
			res := c.Hook(c)
			c.inflight = nil
			c.nInstr++
			switch res {
			case isa.EcallHandled:
				c.pc = uint64(u.imm)
				return i + 1, out, true, nil
			case isa.EcallVector:
				rec.Target = c.pc
				rec.Taken = true
				return i + 1, out, true, nil
			case isa.EcallBlock:
				c.pc = uint64(u.imm)
				return i + 1, out, true, ErrBlock
			case isa.EcallHalt:
				c.pc = uint64(u.imm)
				return i + 1, out, true, ErrHalt
			}
			return i, out[:base+i], true, fmt.Errorf("cisc: bad ecall result %d", res)
		default:
			c.pc = u.pc
			c.nInstr += uint64(i)
			return i, out[:base+i], true, fmt.Errorf("cisc: unimplemented %s at pc=%#x", b.insts[i].Kind, u.pc)
		}
	}
	c.nInstr += uint64(n)
	if full {
		c.pc = b.end
	} else {
		c.pc = b.uops[n].pc
	}
	return n, out, false, nil
}

// stepBlockFast executes up to max instructions of b without building any
// trace records — the setup-phase and fast-forward lane. Architectural
// effects, retired counts and syscall behavior are identical to
// stepBlockTrace (Annotate is a no-op because no record is in flight,
// matching the single-step path whose records the machine discards in
// this mode). The class census is folded from the block's static totals —
// one whole-block add in the common case, a template prefix scan when the
// run was cut short by the budget or a control transfer.
func (c *Core) stepBlockFast(b *block, max int) (int, bool, error) {
	n, stop, err := c.stepBlockFastInner(b, max)
	if n == len(b.recs) {
		c.classes.Add(b.cnt)
	} else if n > 0 {
		c.classes.AddRecs(b.recs[:n])
	}
	return n, stop, err
}

func (c *Core) stepBlockFastInner(b *block, max int) (int, bool, error) {
	r := &c.Regs
	n := len(b.uops)
	full := n <= max
	if !full {
		n = max
	}
	ring := c.DebugRing != nil
	uops := b.uops[:n]
	for i := range uops {
		u := &uops[i]
		if ring {
			c.ringPush(u.pc)
		}
		switch u.op {
		case uNOP:
		case uMOVI:
			r[u.dst] = u.aux
		case uMOVrr:
			r[u.dst] = r[u.src]
		case uADDrr:
			r[u.dst] += r[u.src]
		case uSUBrr:
			r[u.dst] -= r[u.src]
		case uMULrr:
			r[u.dst] *= r[u.src]
		case uDIVrr:
			r[u.dst] = uint64(divS(int64(r[u.dst]), int64(r[u.src])))
		case uREMrr:
			r[u.dst] = uint64(remS(int64(r[u.dst]), int64(r[u.src])))
		case uDIVUrr:
			r[u.dst] = divU(r[u.dst], r[u.src])
		case uREMUrr:
			r[u.dst] = remU(r[u.dst], r[u.src])
		case uANDrr:
			r[u.dst] &= r[u.src]
		case uORrr:
			r[u.dst] |= r[u.src]
		case uXORrr:
			r[u.dst] ^= r[u.src]
		case uSHLrr:
			r[u.dst] <<= r[u.src] & 63
		case uSHRrr:
			r[u.dst] >>= r[u.src] & 63
		case uSARrr:
			r[u.dst] = uint64(int64(r[u.dst]) >> (r[u.src] & 63))
		case uADDI:
			r[u.dst] += u.aux
		case uANDI:
			r[u.dst] &= u.aux
		case uORI:
			r[u.dst] |= u.aux
		case uXORI:
			r[u.dst] ^= u.aux
		case uMULI:
			r[u.dst] *= u.aux
		case uSHLI:
			r[u.dst] <<= u.aux
		case uSHRI:
			r[u.dst] >>= u.aux
		case uSARI:
			r[u.dst] = uint64(int64(r[u.dst]) >> u.aux)
		case uLDB:
			r[u.dst] = isa.SignExtend(c.Mem.Load8(r[u.src]+u.aux), 1)
		case uLDH:
			r[u.dst] = isa.SignExtend(c.Mem.Load16(r[u.src]+u.aux), 2)
		case uLDW:
			r[u.dst] = isa.SignExtend(c.Mem.Load32(r[u.src]+u.aux), 4)
		case uLDBU:
			r[u.dst] = c.Mem.Load8(r[u.src]+u.aux)
		case uLDHU:
			r[u.dst] = c.Mem.Load16(r[u.src]+u.aux)
		case uLDWU:
			r[u.dst] = c.Mem.Load32(r[u.src]+u.aux)
		case uLDQ:
			r[u.dst] = c.Mem.Load64(r[u.src]+u.aux)
		case uSTB:
			c.Mem.Store8(r[u.dst]+u.aux, r[u.src])
		case uSTH:
			c.Mem.Store16(r[u.dst]+u.aux, r[u.src])
		case uSTW:
			c.Mem.Store32(r[u.dst]+u.aux, r[u.src])
		case uSTQ:
			c.Mem.Store64(r[u.dst]+u.aux, r[u.src])
		case uCMPrr:
			c.flagA, c.flagB = int64(r[u.dst]), int64(r[u.src])
		case uCMPri:
			c.flagA, c.flagB = int64(r[u.dst]), u.imm
		case uSETE:
			r[u.dst] = b2u(c.flagA == c.flagB)
		case uSETNE:
			r[u.dst] = b2u(c.flagA != c.flagB)
		case uSETL:
			r[u.dst] = b2u(c.flagA < c.flagB)
		case uSETLE:
			r[u.dst] = b2u(c.flagA <= c.flagB)
		case uSETG:
			r[u.dst] = b2u(c.flagA > c.flagB)
		case uSETGE:
			r[u.dst] = b2u(c.flagA >= c.flagB)
		case uSETB:
			r[u.dst] = b2u(uint64(c.flagA) < uint64(c.flagB))
		case uSETAE:
			r[u.dst] = b2u(uint64(c.flagA) >= uint64(c.flagB))
		case uPUSH:
			r[RSP] -= 8
			c.Mem.Store64(r[RSP], r[u.dst])
		case uPOP:
			r[u.dst] = c.Mem.Load64(r[RSP])
			r[RSP] += 8
		case uLEA:
			r[u.dst] = r[u.src] + u.aux
		case uJMP:
			c.pc = u.aux
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJE:
			if c.flagA == c.flagB {
				c.pc = u.aux
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJNE:
			if c.flagA != c.flagB {
				c.pc = u.aux
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJL:
			if c.flagA < c.flagB {
				c.pc = u.aux
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJLE:
			if c.flagA <= c.flagB {
				c.pc = u.aux
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJG:
			if c.flagA > c.flagB {
				c.pc = u.aux
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJGE:
			if c.flagA >= c.flagB {
				c.pc = u.aux
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJB:
			if uint64(c.flagA) < uint64(c.flagB) {
				c.pc = u.aux
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJAE:
			if uint64(c.flagA) >= uint64(c.flagB) {
				c.pc = u.aux
			} else {
				c.pc = uint64(u.imm)
			}
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uCALL:
			r[RSP] -= 8
			c.Mem.Store64(r[RSP], uint64(u.imm))
			c.pc = u.aux
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uCALLr:
			tgt := r[u.src]
			r[RSP] -= 8
			c.Mem.Store64(r[RSP], uint64(u.imm))
			c.pc = tgt
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uJMPr:
			c.pc = r[u.src]
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uRET:
			c.pc = c.Mem.Load64(r[RSP])
			r[RSP] += 8
			c.nInstr += uint64(i + 1)
			return i + 1, false, nil
		case uSYSCALL:
			c.pc = u.pc
			c.nInstr += uint64(i)
			if c.Hook == nil {
				return i, true, fmt.Errorf("cisc: syscall with no hook at pc=%#x", u.pc)
			}
			res := c.Hook(c)
			c.nInstr++
			switch res {
			case isa.EcallHandled:
				c.pc = uint64(u.imm)
				return i + 1, true, nil
			case isa.EcallVector:
				return i + 1, true, nil
			case isa.EcallBlock:
				c.pc = uint64(u.imm)
				return i + 1, true, ErrBlock
			case isa.EcallHalt:
				c.pc = uint64(u.imm)
				return i + 1, true, ErrHalt
			}
			return i, true, fmt.Errorf("cisc: bad ecall result %d", res)
		default:
			c.pc = u.pc
			c.nInstr += uint64(i)
			return i, true, fmt.Errorf("cisc: unimplemented %s at pc=%#x", b.insts[i].Kind, u.pc)
		}
	}
	c.nInstr += uint64(n)
	if full {
		c.pc = b.end
	} else {
		c.pc = b.uops[n].pc
	}
	return n, false, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
