package gemsys

import (
	"fmt"
	"sync"

	"svbench/internal/isa"
	"svbench/internal/isa/cisc"
	"svbench/internal/isa/riscv"
	"svbench/internal/kernel"
	"svbench/internal/libc"
)

// kernelImage is the process-wide compiled kernel for one architecture:
// the program image plus a pre-decoded overlay of its text. Both are
// immutable after construction, so any number of concurrently booting
// machines may share them — the parallel sweep boots dozens of machines
// and this removes the per-boot kernel compile and decode cost.
type kernelImage struct {
	prog     *isa.Program
	sharedRV *riscv.SharedText
	sharedC  *cisc.SharedText
}

var kernelImages struct {
	sync.Mutex
	byArch map[isa.Arch]*kernelImage
}

// kernelImageFor compiles (once per process per architecture) the kernel
// module at kernelBase and pre-decodes its text segment. The kernel build
// depends only on the architecture's libc flavor, so the cache key is the
// architecture alone.
func kernelImageFor(arch isa.Arch) (*kernelImage, error) {
	kernelImages.Lock()
	defer kernelImages.Unlock()
	if img, ok := kernelImages.byArch[arch]; ok {
		return img, nil
	}
	kmod := kernel.Module(libc.ForArch(string(arch)))
	var prog *isa.Program
	var err error
	switch arch {
	case isa.RV64:
		prog, err = riscv.Compile(kmod, kernelBase)
	case isa.CISC64:
		prog, err = cisc.Compile(kmod, kernelBase)
	default:
		return nil, fmt.Errorf("gemsys: unknown arch %q", arch)
	}
	if err != nil {
		return nil, err
	}
	img := &kernelImage{prog: prog}
	switch arch {
	case isa.RV64:
		img.sharedRV = riscv.PredecodeText(prog.TextBase, prog.Text)
	case isa.CISC64:
		img.sharedC = cisc.PredecodeText(prog.TextBase, prog.Text)
	}
	if kernelImages.byArch == nil {
		kernelImages.byArch = map[isa.Arch]*kernelImage{}
	}
	kernelImages.byArch[arch] = img
	return img, nil
}
