package cluster

import (
	"fmt"

	"svbench/internal/ir"
	"svbench/internal/kernel"
	"svbench/internal/langrt"
	"svbench/internal/vswarm"
)

// relayBufSize bounds one datastore request or response on the wire.
const relayBufSize = 16 << 10

// relayModule builds the guest program of a datastore node: an infinite
// loop shuttling each network request to the locally-bound storage
// service and its reply back out. The relay is deliberately minimal (no
// libc, no runtime model) — the store's cost model already charges the
// engine's service time, so the relay adds only the syscall path, which
// stands in for the wire-protocol frontend of the real engine. Serving
// is serial: concurrent requests queue in the ingress channel, modeling
// a single-threaded engine frontend.
func relayModule(ingress, localReq, localResp, egress int) *ir.Module {
	m := ir.NewModule("dsrelay")
	m.AddGlobal(&ir.Global{Name: "relay_buf", Data: make([]byte, relayBufSize)})
	b := ir.NewFunc("main", 0)
	buf := b.Global("relay_buf", 0)
	bufCap := b.Const(relayBufSize)
	loop := b.NewLabel("loop")
	b.Label(loop)
	n := b.Ecall(kernel.SysRecv, b.Const(int64(ingress)), buf, bufCap)
	b.EcallV(kernel.SysSend, b.Const(int64(localReq)), buf, n)
	rn := b.Ecall(kernel.SysRecv, b.Const(int64(localResp)), buf, bufCap)
	b.EcallV(kernel.SysSend, b.Const(int64(egress)), buf, rn)
	b.Jmp(loop)
	b.Ret(b.Const(0))
	m.AddFunc(b.Build())
	return m
}

// orchestratorModule builds the workload module of an orchestrator node
// as a regular handler (wrapped by langrt.BuildServer like any
// function). Each stage sends its canned requests back-to-back — the
// fan-out — then gathers every reply before the next stage starts; the
// response summarizes {calls, total reply bytes}. chans maps each called
// service name to the node's channel pair for that dependency.
func orchestratorModule(name string, stages [][]Call, chans map[string]ChanPair) *ir.Module {
	m := ir.NewModule("orch-" + name)
	m.AddGlobal(&ir.Global{Name: "oc_rbuf", Data: make([]byte, langrt.RBufSize)})
	for si, stage := range stages {
		for ci, c := range stage {
			m.AddGlobal(&ir.Global{
				Name: fmt.Sprintf("oc_req_%d_%d", si, ci),
				Data: append([]byte(nil), c.Request...),
			})
		}
	}
	b := ir.NewFunc(vswarm.Handler, 3)
	resp := b.Param(2)
	rbuf := b.Global("oc_rbuf", 0)
	rbufCap := b.Const(langrt.RBufSize)
	total := b.Const(0)
	calls := 0
	for si, stage := range stages {
		for ci, c := range stage {
			p := chans[c.Service]
			g := b.Global(fmt.Sprintf("oc_req_%d_%d", si, ci), 0)
			b.EcallV(kernel.SysSend, b.Const(int64(p.Req)), g, b.Const(int64(len(c.Request))))
		}
		for _, c := range stage {
			p := chans[c.Service]
			n := b.Ecall(kernel.SysRecv, b.Const(int64(p.Resp)), rbuf, rbufCap)
			total = b.Add(total, n)
			calls++
		}
	}
	b.CallV("mbuf_reset", resp)
	b.CallV("mbuf_put_int", resp, b.Const(int64(calls)))
	b.CallV("mbuf_put_int", resp, total)
	b.Ret(b.Call("mbuf_len", resp))
	m.AddFunc(b.Build())
	return m
}
