// Package autoscale is the cluster-scale scheduling layer above the
// loadgen engine: a deterministic discrete-event simulation of N worker
// nodes with finite cores and memory, a best-fit bin-packing placer for
// function instances, and pluggable autoscaling policies (fixed fleet,
// Knative-style concurrency target, scale-to-zero, panic mode with
// hysteresis) reacting to the same seeded arrival processes loadgen
// replays.
//
// Every instance is still a real simulated machine — cold starts restore
// private clones of the memoized post-boot checkpoint through
// loadgen.Fleet, and service times are measured on the machine's virtual
// clock — but unlike loadgen's single keep-alive pool, capacity here is
// owned by the autoscaler: a reconcile loop observes in-flight plus
// queued concurrency at a fixed tick and scales the fleet toward the
// policy's desired count, placing new instances onto nodes with a
// best-fit packer and reclaiming idle ones whose keep-alive lease
// lapsed.
//
// Determinism is the same contract as loadgen and sweep: one run is a
// sequential DES whose every decision is a pure function of (config,
// seed). The event order at equal timestamps is completion, then
// instance-ready, then reconcile tick, then arrival — a freeing or
// booting instance can absorb work at the same instant, and the
// autoscaler observes the cluster before a same-tick arrival lands.
// RunMany parallelizes only across sweep points, so policy × RPS grids
// are byte-identical for any worker count. See docs/autoscale.md.
package autoscale

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/loadgen"
	"svbench/internal/sweep"
	"svbench/internal/trace"
)

// Defaults for zero-valued Config fields.
const (
	// DefaultNodes is the simulated worker-node count.
	DefaultNodes = 4
	// DefaultNodeCores is each node's core count; one running instance
	// occupies one core.
	DefaultNodeCores = 4
	// DefaultNodeMemMB is each node's memory in MB.
	DefaultNodeMemMB = 4096
	// DefaultInstMemMB is one instance's memory footprint in MB.
	DefaultInstMemMB = 512
	// DefaultTickNS is the reconcile period on the virtual clock: 50 µs,
	// a few warm service times — fine enough that a burst is observed
	// while its queue is still draining (a tick coarser than the drain
	// time would never see demand), far finer than keep-alive leases.
	DefaultTickNS = 50_000
	// DefaultSLO is the latency objective reports grade attainment
	// against: 100 µs virtual — generous for a warm fleet (tens of warm
	// service times) but unreachable for a request that waits out a full
	// cold-start boot, so a policy's churn shows up directly as misses.
	DefaultSLO = 100_000
	// DefaultKeepAlive is the idle lease before an instance becomes a
	// scale-down candidate (10 ms virtual, matching loadgen's default
	// keep-alive experiments).
	DefaultKeepAlive = 10_000_000
)

// Config describes one autoscaled cluster run.
type Config struct {
	// Cfg is the simulated machine configuration every instance boots
	// with (gemsys.DefaultConfig of an ISA).
	Cfg gemsys.Config
	// Spec is the function under load (harness catalog entry).
	Spec harness.Spec
	// RPS is the mean arrival rate in invocations per virtual second.
	RPS float64
	// Duration is the arrival window in virtual nanoseconds; completions
	// drain past it (open loop).
	Duration uint64
	// Seed drives the arrival process PRNG.
	Seed uint64
	// Arrival selects the arrival process (Poisson default).
	Arrival loadgen.Process
	// Burst is the Bursty process's batch size (0 = loadgen.DefaultBurst).
	Burst int

	// Nodes is the simulated worker-node count (0 = DefaultNodes).
	Nodes int
	// NodeCores is each node's core count (0 = DefaultNodeCores); one
	// running instance occupies one core.
	NodeCores int
	// NodeMemMB is each node's memory in MB (0 = DefaultNodeMemMB).
	NodeMemMB int
	// InstMemMB is one instance's memory footprint in MB
	// (0 = DefaultInstMemMB).
	InstMemMB int

	// Policy is the autoscaling strategy (nil = the concurrency-target
	// policy from the catalog).
	Policy Policy
	// TickNS is the reconcile period in virtual nanoseconds
	// (0 = DefaultTickNS).
	TickNS uint64
	// KeepAlive is the idle lease in virtual nanoseconds before an
	// instance becomes a scale-down candidate. Zero is meaningful (idle
	// instances are immediately reclaimable), so no default is resolved;
	// sweep builders wanting one use DefaultKeepAlive explicitly.
	KeepAlive uint64
	// SLO is the end-to-end latency objective in virtual nanoseconds
	// reports grade attainment against (0 = DefaultSLO).
	SLO uint64

	// Cache, when non-nil, memoizes post-boot checkpoints across runs
	// (RunMany shares one cache over all points of a sweep).
	Cache *harness.BootCache
}

// NodeCount is the effective worker-node count.
func (c Config) NodeCount() int {
	if c.Nodes <= 0 {
		return DefaultNodes
	}
	return c.Nodes
}

// CoresPerNode is the effective per-node core count.
func (c Config) CoresPerNode() int {
	if c.NodeCores <= 0 {
		return DefaultNodeCores
	}
	return c.NodeCores
}

// MemPerNode is the effective per-node memory in MB.
func (c Config) MemPerNode() int {
	if c.NodeMemMB <= 0 {
		return DefaultNodeMemMB
	}
	return c.NodeMemMB
}

// MemPerInstance is the effective per-instance memory footprint in MB.
func (c Config) MemPerInstance() int {
	if c.InstMemMB <= 0 {
		return DefaultInstMemMB
	}
	return c.InstMemMB
}

// Capacity is the cluster's instance capacity: per node, the smaller of
// core count and memory slots, summed over nodes.
func (c Config) Capacity() int {
	per := c.CoresPerNode()
	if slots := c.MemPerNode() / c.MemPerInstance(); slots < per {
		per = slots
	}
	return c.NodeCount() * per
}

// Tick is the effective reconcile period.
func (c Config) Tick() uint64 {
	if c.TickNS == 0 {
		return DefaultTickNS
	}
	return c.TickNS
}

// Objective is the effective latency SLO.
func (c Config) Objective() uint64 {
	if c.SLO == 0 {
		return DefaultSLO
	}
	return c.SLO
}

// ScalePolicy is the effective policy (the catalog's concurrency-target
// autoscaler when none is set).
func (c Config) ScalePolicy() Policy {
	if c.Policy == nil {
		return Concurrency{Label: "concurrency", Target: DefaultTarget, Min: 1}
	}
	return c.Policy
}

// node is one simulated worker's finite resources plus its lifetime
// accounting.
type node struct {
	cores     int
	memMB     int
	usedCores int
	usedMemMB int
	placed    uint64 // instances ever placed here
	busyNS    uint64 // integral of serving time across its instances
}

// place returns the best-fit node for an instance consuming one core and
// memMB of memory: among nodes it fits on, the one with the fewest free
// cores (ties: least free memory, then lowest index), or -1 when the
// cluster is full. Best-fit packs instances densely, so whole nodes
// drain to idle and utilization concentrates — the bin-packing shape
// real schedulers aim for.
func place(nodes []node, memMB int) int {
	best := -1
	for i := range nodes {
		n := &nodes[i]
		if n.usedCores+1 > n.cores || n.usedMemMB+memMB > n.memMB {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := &nodes[best]
		fc, fb := n.cores-n.usedCores, b.cores-b.usedCores
		if fc < fb || (fc == fb && n.memMB-n.usedMemMB < b.memMB-b.usedMemMB) {
			best = i
		}
	}
	return best
}

// Slot states: an instance is paying its cold-start boot, waiting warm,
// or serving.
const (
	stStarting = iota
	stIdle
	stBusy
)

// slot is one live instance's scheduling state.
type slot struct {
	inst      *loadgen.Instance
	node      int
	state     int
	readyAt   uint64 // starting: when the boot penalty has elapsed
	idleSince uint64 // idle: when it last went idle
	inv       int    // busy: invocation being served
	done      uint64 // busy: when the instance frees
	served    uint64 // invocations this slot has served
}

type engine struct {
	cfg Config
	// coreCap is the autoscaler's clamp: the core capacity it knows about
	// (nodes × cores). Memory pressure is the placer's to discover — a
	// desired count that fits core-wise but not memory-wise surfaces as
	// rejected placements, the way a real scheduler learns a cluster is
	// full.
	coreCap int
	tick    uint64
	slo     uint64

	fleet   *loadgen.Fleet
	scaler  Scaler
	nodes   []node
	slots   []*slot
	arrives []uint64
	invs    []Invocation
	queue   []int // invocation ids, FIFO

	tickIdx uint64
	inPanic bool

	// Counters registered into the stats registry.
	scaleUps      uint64
	scaleDowns    uint64
	churnColds    uint64
	rejected      uint64
	peak          uint64
	live          uint64
	maxQueue      uint64
	panicEntries  uint64
	panicExits    uint64
	ticks         uint64
	sloViolations uint64
	checkFailures uint64

	tracer *trace.Tracer
	reg    *trace.Registry
	latD   *trace.Dist
	waitD  *trace.Dist
	svcD   *trace.Dist
	coldD  *trace.Dist
}

// Run executes one autoscaled cluster run. The returned Report is a pure
// function of cfg: rerunning with the same config reproduces it
// byte-for-byte.
func Run(cfg Config) (*Report, error) {
	if cfg.Spec.Build == nil || cfg.Spec.Request == nil {
		return nil, fmt.Errorf("autoscale: config has no function spec")
	}
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("autoscale: RPS must be positive, got %g", cfg.RPS)
	}
	if cfg.Duration == 0 {
		return nil, fmt.Errorf("autoscale: duration must be positive")
	}
	if cfg.Nodes < 0 || cfg.NodeCores < 0 || cfg.NodeMemMB < 0 || cfg.InstMemMB < 0 {
		return nil, fmt.Errorf("autoscale: cluster dimensions must be >= 0")
	}
	if cfg.MemPerInstance() > cfg.MemPerNode() {
		return nil, fmt.Errorf("autoscale: instance memory %d MB exceeds node memory %d MB",
			cfg.MemPerInstance(), cfg.MemPerNode())
	}

	e := &engine{
		cfg:     cfg,
		coreCap: cfg.NodeCount() * cfg.CoresPerNode(),
		tick:    cfg.Tick(),
		slo:     cfg.Objective(),
		scaler:  cfg.ScalePolicy().New(),
	}
	e.nodes = make([]node, cfg.NodeCount())
	for i := range e.nodes {
		e.nodes[i] = node{cores: cfg.CoresPerNode(), memMB: cfg.MemPerNode()}
	}
	e.arrives = loadgen.Arrivals(loadgen.Config{
		RPS: cfg.RPS, Duration: cfg.Duration, Seed: cfg.Seed,
		Arrival: cfg.Arrival, Burst: cfg.Burst,
	})
	e.invs = make([]Invocation, len(e.arrives))
	// Arrive/run/done plus scale and panic markers; ticks add at most one
	// panic transition each, so size for the worst case.
	e.tracer = trace.NewTracer(8*len(e.arrives) + 4096)
	e.initRegistry()

	f, err := loadgen.NewFleet(cfg.Cfg, cfg.Spec, cfg.Cache, nil)
	if err != nil {
		return nil, err
	}
	e.fleet = f
	if err := e.simulate(); err != nil {
		return nil, err
	}
	return e.report()
}

// RunMany executes one run per config across a worker pool of jobs
// workers (0 = sweep.DefaultJobs()); configs without their own Cache
// share one, so all points of a policy × RPS sweep boot each fingerprint
// once. Reports come back in config order and each is byte-identical to
// a solo Run of the same config.
func RunMany(cfgs []Config, jobs int) ([]*Report, []error) {
	shared := harness.NewBootCache()
	reports := make([]*Report, len(cfgs))
	errs := make([]error, len(cfgs))
	sweep.Each(len(cfgs), jobs, func(i int) {
		c := cfgs[i]
		if c.Cache == nil {
			c.Cache = shared
		}
		reports[i], errs[i] = Run(c)
	})
	return reports, errs
}

func (e *engine) initRegistry() {
	r := trace.NewRegistry()
	e.reg = r
	e.latD = r.NewDist("autoscale.latencyNS", "end-to-end invocation latency (virtual ns)")
	e.waitD = r.NewDist("autoscale.waitNS", "arrival-to-service wait (queueing + boot readiness, virtual ns)")
	e.svcD = r.NewDist("autoscale.serviceNS", "on-instance service time (virtual ns)")
	e.coldD = r.NewDist("autoscale.coldPenaltyNS", "cold-start boot penalty (virtual ns)")
	r.Counter("autoscale.scaleUps", "instances the autoscaler started", &e.scaleUps)
	r.Counter("autoscale.scaleDowns", "idle instances the autoscaler reclaimed", &e.scaleDowns)
	r.Counter("autoscale.churnColdStarts", "post-peak scale-ups refilling reclaimed capacity", &e.churnColds)
	r.Counter("autoscale.rejectedScaleUps", "scale-up decisions the full cluster could not place", &e.rejected)
	r.Counter("autoscale.peakInstances", "fleet high-water mark", &e.peak)
	r.Counter("autoscale.maxQueueDepth", "deepest FIFO backlog awaiting capacity", &e.maxQueue)
	r.Counter("autoscale.panicEntries", "panic-mode entries", &e.panicEntries)
	r.Counter("autoscale.panicExits", "panic-mode exits", &e.panicExits)
	r.Counter("autoscale.ticks", "reconcile invocations (periodic + activator kicks)", &e.ticks)
	r.Counter("autoscale.sloViolations", "invocations finishing beyond the SLO", &e.sloViolations)
	r.Counter("autoscale.checkFailures", "responses failing the spec's check", &e.checkFailures)
	r.Func("autoscale.invocations", "arrivals replayed against the cluster", func() uint64 {
		return uint64(len(e.arrives))
	})
	r.Func("autoscale.capacity", "cluster instance capacity", func() uint64 {
		return uint64(e.cfg.Capacity())
	})
}

// counts tallies slots by state.
func (e *engine) counts() (starting, idle, busy int) {
	for _, s := range e.slots {
		switch s.state {
		case stStarting:
			starting++
		case stIdle:
			idle++
		case stBusy:
			busy++
		}
	}
	return
}

// simulate runs the discrete-event loop. The tie-break at equal
// timestamps is completions first (a freeing instance can absorb work at
// the same instant), then instance-ready (a booted instance can too),
// then reconcile ticks (the autoscaler observes the cluster before a
// same-instant arrival lands), then arrivals.
func (e *engine) simulate() error {
	next := 0
	for {
		starting, _, busy := e.counts()
		if next >= len(e.arrives) && starting == 0 && busy == 0 && len(e.queue) == 0 {
			return nil
		}
		inf := ^uint64(0)
		ct, rt, at := inf, inf, inf
		ci, ri := -1, -1
		for i, s := range e.slots {
			switch s.state {
			case stBusy:
				if ci < 0 || s.done < ct || (s.done == ct && s.inv < e.slots[ci].inv) {
					ci, ct = i, s.done
				}
			case stStarting:
				if ri < 0 || s.readyAt < rt || (s.readyAt == rt && s.inst.ID < e.slots[ri].inst.ID) {
					ri, rt = i, s.readyAt
				}
			}
		}
		tt := e.tickIdx * e.tick
		if next < len(e.arrives) {
			at = e.arrives[next]
		}
		switch {
		case ci >= 0 && ct <= rt && ct <= tt && ct <= at:
			if err := e.complete(e.slots[ci], ct); err != nil {
				return err
			}
		case ri >= 0 && rt <= tt && rt <= at:
			if err := e.ready(e.slots[ri], rt); err != nil {
				return err
			}
		case tt <= at:
			e.tickIdx++
			if err := e.reconcile(tt); err != nil {
				return err
			}
		default:
			id := next
			next++
			if err := e.arrive(id, at); err != nil {
				return err
			}
		}
	}
}

// arrive admits one invocation: served immediately on a warm instance
// when one is idle, otherwise queued FIFO — and if nothing is live or
// booting, the queued arrival kicks an immediate reconcile (the
// activator path that wakes a scaled-to-zero fleet).
func (e *engine) arrive(id int, now uint64) error {
	e.invs[id].ID = id
	e.invs[id].Arrive = now
	e.tracer.EmitAt(trace.EvInvokeArrive, 0, now, 0, uint64(id), 0)
	if s := e.takeIdle(); s != nil {
		return e.serve(s, id, now)
	}
	e.queue = append(e.queue, id)
	if uint64(len(e.queue)) > e.maxQueue {
		e.maxQueue = uint64(len(e.queue))
	}
	if len(e.slots) == 0 {
		return e.reconcile(now)
	}
	return nil
}

// takeIdle returns the idle slot that went idle most recently (ties:
// lowest instance id) — MRU, the same warm-pool policy loadgen applies —
// or nil when none is idle. The caller flips it busy via serve.
func (e *engine) takeIdle() *slot {
	var best *slot
	for _, s := range e.slots {
		if s.state != stIdle {
			continue
		}
		if best == nil || s.idleSince > best.idleSince ||
			(s.idleSince == best.idleSince && s.inst.ID < best.inst.ID) {
			best = s
		}
	}
	return best
}

// serve drives invocation id through s's machine starting at now.
func (e *engine) serve(s *slot, id int, now uint64) error {
	svc, checkFailed, err := e.fleet.Serve(s.inst, id)
	if err != nil {
		return err
	}
	iv := &e.invs[id]
	iv.Node = s.node
	iv.Instance = s.inst.ID
	iv.Start = now
	iv.Wait = now - iv.Arrive
	iv.Service = svc
	if checkFailed {
		iv.CheckFailed = true
		e.checkFailures++
	}
	if s.served == 0 {
		// First serve after the cold start: the boot penalty this
		// invocation (or the scaler, when it booted ahead of demand)
		// waited out.
		iv.Cold = true
		iv.ColdPenalty = s.inst.Penalty
	}
	s.served++
	s.state = stBusy
	s.inv = id
	s.done = now + svc
	e.nodes[s.node].busyNS += svc
	e.tracer.EmitAt(trace.EvInvokeRun, uint8(s.inst.ID), now, 0, uint64(id), svc)
	return nil
}

// complete retires one invocation: the instance idles from the
// completion instant and immediately absorbs the queue head, if any.
func (e *engine) complete(s *slot, now uint64) error {
	iv := &e.invs[s.inv]
	iv.Done = now
	iv.Latency = now - iv.Arrive
	e.observe(iv)
	e.tracer.EmitAt(trace.EvInvokeDone, 0, now, 0, uint64(iv.ID), iv.Latency)
	s.state = stIdle
	s.idleSince = now
	if len(e.queue) > 0 {
		id := e.queue[0]
		e.queue = e.queue[1:]
		return e.serve(s, id, now)
	}
	return nil
}

// ready transitions a booted instance to idle and immediately absorbs
// the queue head, if any.
func (e *engine) ready(s *slot, now uint64) error {
	s.state = stIdle
	s.idleSince = now
	if len(e.queue) > 0 {
		id := e.queue[0]
		e.queue = e.queue[1:]
		return e.serve(s, id, now)
	}
	return nil
}

// observe records one invocation's final metrics.
func (e *engine) observe(iv *Invocation) {
	e.latD.Observe(iv.Latency)
	e.waitD.Observe(iv.Wait)
	e.svcD.Observe(iv.Service)
	if iv.Cold {
		e.coldD.Observe(iv.ColdPenalty)
	}
	if iv.Latency > e.slo {
		e.sloViolations++
	} else {
		iv.SLOOk = true
	}
}

// reconcile is one autoscaler invocation: observe the cluster, ask the
// policy for a desired count, and scale toward it — up through the
// bin-packing placer, down by reclaiming lease-expired idle instances.
func (e *engine) reconcile(now uint64) error {
	e.ticks++
	starting, idle, busy := e.counts()
	obs := Observation{
		Now: now, Ready: idle + busy, Starting: starting,
		Busy: busy, Queued: len(e.queue),
	}
	desired := e.scaler.Desired(obs)
	if p, ok := e.scaler.(Panicker); ok {
		if in := p.InPanic(); in != e.inPanic {
			e.inPanic = in
			if in {
				e.panicEntries++
				e.tracer.EmitAt(trace.EvPanicMode, 0, now, 0, 1, 0)
			} else {
				e.panicExits++
				e.tracer.EmitAt(trace.EvPanicMode, 0, now, 0, 0, 0)
			}
		}
	}
	if desired < 0 {
		desired = 0
	}
	if obs.Demand() > 0 && desired < 1 {
		// Liveness floor: pending work must always pull at least one
		// instance, whatever the policy says.
		desired = 1
	}
	if desired > e.coreCap {
		desired = e.coreCap
	}
	live := len(e.slots)
	if desired > live {
		return e.scaleUp(desired-live, now)
	}
	if desired < live {
		e.scaleDown(live-desired, now)
	}
	return nil
}

// scaleUp cold-starts n instances: each is placed best-fit onto a node,
// restored from the master checkpoint, and becomes ready once its boot
// penalty elapses. A full cluster rejects the remainder (counted, not
// queued — the demand stays visible to the next tick).
func (e *engine) scaleUp(n int, now uint64) error {
	for i := 0; i < n; i++ {
		nd := place(e.nodes, e.cfg.MemPerInstance())
		if nd < 0 {
			e.rejected += uint64(n - i)
			return nil
		}
		inst, err := e.fleet.Acquire()
		if err != nil {
			return err
		}
		e.nodes[nd].usedCores++
		e.nodes[nd].usedMemMB += e.cfg.MemPerInstance()
		e.nodes[nd].placed++
		s := &slot{inst: inst, node: nd, state: stStarting, readyAt: now + inst.Penalty}
		e.slots = append(e.slots, s)
		e.scaleUps++
		e.live++
		if e.live > e.peak {
			e.peak = e.live
		} else {
			// Refilling capacity a scale-down reclaimed earlier: churn.
			e.churnColds++
		}
		e.tracer.EmitAt(trace.EvColdStart, uint8(inst.ID), now, 0, uint64(inst.ID), inst.Penalty)
		e.tracer.EmitAt(trace.EvScaleUp, uint8(nd), now, 0, uint64(inst.ID), uint64(nd))
	}
	return nil
}

// leaseEnd is when an idle slot becomes a scale-down candidate
// (overflow-safe: a huge keep-alive never expires).
func (e *engine) leaseEnd(s *slot) uint64 {
	end := s.idleSince + e.cfg.KeepAlive
	if end < s.idleSince {
		return ^uint64(0)
	}
	return end
}

// scaleDown reclaims up to n idle instances whose keep-alive lease ended
// at or before now, longest-idle first (ties: lowest instance id).
// Busy and starting slots are never torn down.
func (e *engine) scaleDown(n int, now uint64) {
	for ; n > 0; n-- {
		victim := -1
		for i, s := range e.slots {
			if s.state != stIdle || e.leaseEnd(s) > now {
				continue
			}
			if victim < 0 || s.idleSince < e.slots[victim].idleSince ||
				(s.idleSince == e.slots[victim].idleSince && s.inst.ID < e.slots[victim].inst.ID) {
				victim = i
			}
		}
		if victim < 0 {
			return
		}
		s := e.slots[victim]
		e.slots = append(e.slots[:victim], e.slots[victim+1:]...)
		e.nodes[s.node].usedCores--
		e.nodes[s.node].usedMemMB -= e.cfg.MemPerInstance()
		e.scaleDowns++
		e.live--
		e.fleet.Release(s.inst)
		e.tracer.EmitAt(trace.EvInstReclaim, uint8(s.inst.ID), now, 0, uint64(s.inst.ID), 0)
		e.tracer.EmitAt(trace.EvScaleDown, uint8(s.node), now, 0, uint64(s.inst.ID), uint64(s.node))
	}
}
