package loadgen

import (
	"fmt"

	"svbench/internal/gemsys"
	"svbench/internal/harness"
	"svbench/internal/rpc"
	"svbench/internal/trace"
)

// Fleet is the machine-lifecycle layer behind a load run, split out of
// the pool policy so other schedulers (the cluster autoscaler in
// internal/autoscale) can share it: it boots the spec's master once
// (through harness.BootCache when one is supplied), cold-starts
// instances by restoring private copies of the post-boot checkpoint,
// recycles reclaimed machines through a free list, and drives one
// invocation at a time through an instance host-side.
//
// A Fleet is single-goroutine like the engines that own it: every
// Acquire/Serve/Release happens inside a sequential discrete-event
// loop, in deterministic event order.
type Fleet struct {
	cfg    gemsys.Config
	spec   harness.Spec
	reqMsg []byte

	// masterCk is the shared post-boot checkpoint instances restore from;
	// nil when the spec's boot is not memoizable (host-side service state
	// — each cold start then simulates its own setup).
	masterCk   *gemsys.Checkpoint
	masterNS   uint64
	memoizable bool

	free   []*Instance // reclaimed machines awaiting re-restore
	nextID int

	// onInstance, when non-nil, fires once per cold start with the
	// fleet-assigned instance id and the machine's guest→service channel
	// bindings (Config.OnInstance's contract).
	onInstance func(instID int, bindings []harness.ServiceBinding)
}

// Instance is one warm function machine of a fleet.
type Instance struct {
	// ID is the fleet-wide creation sequence number; a recycled machine
	// gets a fresh id on each cold start.
	ID int
	// Penalty is the boot time (virtual ns of the skipped setup phase)
	// charged when this instance was cold-started.
	Penalty uint64
	// IdleSince is pool-policy state: the instant the instance last went
	// idle. The fleet never reads it.
	IdleSince uint64

	b      *harness.Boot
	reqCh  int
	respCh int
}

// NewFleet boots (or fetches from cache) the spec's master checkpoint
// and returns a fleet ready to cold-start instances. The spec's tracing
// is forced off: the load layers own observability, so instances run
// the event-free hot path. onInstance may be nil.
func NewFleet(cfg gemsys.Config, spec harness.Spec, cache *harness.BootCache,
	onInstance func(instID int, bindings []harness.ServiceBinding)) (*Fleet, error) {
	if spec.Build == nil || spec.Request == nil {
		return nil, fmt.Errorf("loadgen: fleet has no function spec")
	}
	spec.Trace = trace.Options{}
	f := &Fleet{cfg: cfg, spec: spec, reqMsg: spec.Request(), onInstance: onInstance}
	b, err := harness.BootSpec(cfg, spec)
	if err != nil {
		return nil, fmt.Errorf("loadgen: master boot: %w", err)
	}
	ck, setupInsts, err := cache.CheckpointFor(b)
	if err != nil {
		return nil, fmt.Errorf("loadgen: master setup: %w", err)
	}
	f.memoizable = b.Memoizable()
	if f.memoizable {
		f.masterCk = ck
		f.masterNS = setupInsts
	}
	return f, nil
}

// Memoizable reports whether instances restore from the shared master
// checkpoint (false means every cold start simulates its own setup).
func (f *Fleet) Memoizable() bool { return f.memoizable }

// Acquire cold-starts an instance: a reclaimed machine re-restored from
// the master checkpoint when possible, otherwise a freshly booted one.
// The simulated client is killed so the owner can drive the surviving
// function server host-side.
func (f *Fleet) Acquire() (*Instance, error) {
	if n := len(f.free); n > 0 && f.memoizable {
		inst := f.free[n-1]
		f.free = f.free[:n-1]
		if err := inst.b.M.Restore(f.masterCk); err != nil {
			return nil, fmt.Errorf("loadgen: re-restore: %w", err)
		}
		if err := inst.b.M.KillProcess("client"); err != nil {
			return nil, err
		}
		inst.ID = f.nextID
		f.nextID++
		if f.onInstance != nil {
			f.onInstance(inst.ID, inst.b.ServiceBindings())
		}
		return inst, nil
	}
	b, err := harness.BootSpec(f.cfg, f.spec)
	if err != nil {
		return nil, fmt.Errorf("loadgen: instance boot: %w", err)
	}
	ck := f.masterCk
	penalty := f.masterNS
	if !f.memoizable {
		// Host-side service state cannot be cloned, so this instance
		// simulates its own container setup — the true cold-start cost.
		ck, err = b.Setup()
		if err != nil {
			return nil, fmt.Errorf("loadgen: instance setup: %w", err)
		}
		penalty = b.SetupInsts()
	}
	if err := b.M.Restore(ck); err != nil {
		return nil, fmt.Errorf("loadgen: restore: %w", err)
	}
	if err := b.M.KillProcess("client"); err != nil {
		return nil, err
	}
	reqCh, respCh := b.ClientChans()
	inst := &Instance{ID: f.nextID, b: b, reqCh: reqCh, respCh: respCh, Penalty: penalty}
	f.nextID++
	if f.onInstance != nil {
		f.onInstance(inst.ID, b.ServiceBindings())
	}
	return inst, nil
}

// Release returns a reclaimed instance's machine to the free list so the
// next Acquire re-restores it instead of booting from scratch. Without a
// shared master checkpoint the machine cannot be recycled and is simply
// dropped.
func (f *Fleet) Release(inst *Instance) {
	if f.memoizable {
		f.free = append(f.free, inst)
	}
}

// Serve drives one invocation through inst's machine and returns the
// service time on the virtual clock plus whether the reply failed the
// spec's check.
func (f *Fleet) Serve(inst *Instance, invID int) (svcNS uint64, checkFailed bool, err error) {
	m := inst.b.M
	t0 := m.VirtNS()
	m.K.Inject(inst.reqCh, f.reqMsg)
	if err := m.RunUntilIdle(invokeBudget); err != nil {
		return 0, false, fmt.Errorf("loadgen: invocation %d on instance %d: %w", invID, inst.ID, err)
	}
	resp, ok := m.K.TakeMessage(inst.respCh)
	if !ok {
		return 0, false, fmt.Errorf("loadgen: invocation %d on instance %d: server produced no reply", invID, inst.ID)
	}
	if check := f.spec.Check; check != nil {
		if err := check(rpc.NewReader(resp)); err != nil {
			checkFailed = true
		}
	}
	return m.VirtNS() - t0, checkFailed, nil
}
