package trace

import (
	"strings"
	"testing"
)

func testSyms() *SymTable {
	s := NewSymTable()
	s.AddProgram("server", map[string]uint64{
		"main":    0x1000,
		"handler": 0x2000,
		"fib":     0x3000,
	}, map[string]uint64{
		"main":    0x1100,
		"handler": 0x2100,
		"fib":     0x3100,
	})
	return s
}

func TestProfilerFlatAndCumulative(t *testing.T) {
	syms := testSyms()
	p := NewProfiler(syms, 1, 10)

	// main calls handler calls fib; all sampled cycles land in fib.
	p.OnCall(0, 0x1000) // into main
	p.OnCall(0, 0x2000) // into handler
	p.OnCall(0, 0x3000) // into fib
	for c := uint64(1); c <= 100; c++ {
		p.Observe(0, c, 0x3010)
	}
	prof := p.Report()
	if prof.Samples != 10 {
		t.Fatalf("samples = %d, want 10", prof.Samples)
	}
	if top := prof.Top(); top != "server.fib" {
		t.Fatalf("top = %q, want server.fib", top)
	}
	byName := map[string]ProfileEntry{}
	for _, e := range prof.Entries {
		byName[e.Name] = e
	}
	if e := byName["server.fib"]; e.Flat != 10 || e.Cum != 10 {
		t.Fatalf("fib flat/cum = %d/%d, want 10/10", e.Flat, e.Cum)
	}
	if e := byName["server.handler"]; e.Flat != 0 || e.Cum != 10 {
		t.Fatalf("handler flat/cum = %d/%d, want 0/10 (on stack)", e.Flat, e.Cum)
	}
	if e := byName["server.main"]; e.Flat != 0 || e.Cum != 10 {
		t.Fatalf("main flat/cum = %d/%d, want 0/10 (on stack)", e.Flat, e.Cum)
	}
}

func TestProfilerReturnPopsStack(t *testing.T) {
	syms := testSyms()
	p := NewProfiler(syms, 1, 1)
	p.OnCall(0, 0x1000)
	p.OnCall(0, 0x3000)
	p.OnRet(0) // back out of fib
	p.Observe(0, 5, 0x1010)
	prof := p.Report()
	for _, e := range prof.Entries {
		if e.Name == "server.fib" && e.Cum != 0 {
			t.Fatalf("fib still on stack after return: %+v", e)
		}
	}
}

func TestProfilerLongStallWeighting(t *testing.T) {
	p := NewProfiler(testSyms(), 1, 10)
	// One instruction committing 50 cycles after the last sample point
	// accounts for all the periods it covers.
	p.Observe(0, 50, 0x3010)
	if prof := p.Report(); prof.Samples != 5 {
		t.Fatalf("samples = %d, want 5 (one per crossed period)", prof.Samples)
	}
}

func TestProfilerUnknownPC(t *testing.T) {
	p := NewProfiler(testSyms(), 1, 1)
	p.Observe(0, 1, 0xdead0000)
	prof := p.Report()
	if prof.Unknown != 1 || len(prof.Entries) != 0 {
		t.Fatalf("unknown=%d entries=%d, want 1/0", prof.Unknown, len(prof.Entries))
	}
}

func TestProfilerResetAndDeterminism(t *testing.T) {
	run := func(p *Profiler) string {
		p.OnCall(0, 0x2000)
		for c := uint64(1); c <= 1000; c += 7 {
			p.Observe(0, c, 0x2050)
		}
		return p.Report().Table()
	}
	p := NewProfiler(testSyms(), 1, 13)
	a := run(p)
	p.Reset()
	b := run(p)
	if a != b {
		t.Fatal("same observation stream after Reset produced a different table")
	}
	if !strings.Contains(a, "server.handler") {
		t.Fatal("table missing sampled function")
	}
}

func TestProfilerSkipIdle(t *testing.T) {
	p := NewProfiler(testSyms(), 1, 10)
	// A 75-cycle idle span crosses 7 period boundaries but must not
	// contribute samples; the next real observation resumes at the
	// following boundary.
	p.SkipIdle(0, 75)
	p.Observe(0, 79, 0x3010) // before next boundary (80): no sample
	p.Observe(0, 85, 0x3010) // crosses 80: exactly one sample
	prof := p.Report()
	if prof.Samples != 1 || prof.Unknown != 0 {
		t.Fatalf("samples=%d unknown=%d, want 1/0 after idle skip", prof.Samples, prof.Unknown)
	}
	// Idle ending before the next sample point moves nothing.
	q := NewProfiler(testSyms(), 1, 10)
	q.SkipIdle(0, 5)
	q.Observe(0, 10, 0x3010)
	if prof := q.Report(); prof.Samples != 1 {
		t.Fatalf("samples=%d, want 1 (short idle must not defer sampling)", prof.Samples)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	p.OnCall(0, 1)
	p.OnRet(0)
	p.Observe(0, 1, 1)
	p.SkipIdle(0, 100)
	p.Reset()
	if p.Report() != nil {
		t.Fatal("nil profiler must report nil")
	}
	var prof *Profile
	if prof.Top() != "" || prof.Table() != "" {
		t.Fatal("nil profile renders empty")
	}
}

func TestProfilerRecursionCountsOnce(t *testing.T) {
	syms := testSyms()
	p := NewProfiler(syms, 1, 1)
	p.OnCall(0, 0x3000) // fib
	p.OnCall(0, 0x3000) // fib -> fib (recursive)
	p.OnCall(0, 0x3000)
	p.Observe(0, 1, 0x3010)
	prof := p.Report()
	for _, e := range prof.Entries {
		if e.Name == "server.fib" && e.Cum != 1 {
			t.Fatalf("recursive fib cum = %d, want 1 (once per sample)", e.Cum)
		}
	}
}
